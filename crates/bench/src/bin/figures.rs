//! Regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! figures <experiment> [--json] [--ops N] [--out DIR] [--jobs N] [--no-cache] [--no-trace-arena] [--trace-out FILE] [--sampling MODE]
//! ```
//! `--out DIR` captures each experiment's stdout into `DIR/<exp>.json`
//! as well as printing it. `--jobs N` sets the worker-pool width
//! (default: all CPUs) and `--no-cache` disables the on-disk result
//! cache (`target/p10sim-cache`, override with `P10SIM_CACHE_DIR`); see
//! `p10_core::runner`. `--no-trace-arena` (or `P10SIM_TRACE_ARENA=0`)
//! forces the legacy synthesize-per-call trace path, bypassing the
//! process-wide content-keyed trace arena — the A/B switch for checking
//! that arena output is byte-identical (it mirrors `--no-cache`).
//! `--sampling MODE` (or `P10SIM_SAMPLING`) selects sampled execution
//! for every simulation point routed through the engine: `exact`
//! (default, byte-identical reference), `simpoints:INTERVAL:K[:WARMUP]`,
//! or `learned:INTERVAL:K[:FEATURES]` — see `p10_core::sampling`.
//! `--trace-out FILE` (or the `P10SIM_TRACE` env
//! var) writes an event trace via `p10_obs` — JSON lines by default, or
//! a `chrome://tracing`/Perfetto-loadable trace-event file with
//! `--trace-format chrome` (or `P10SIM_TRACE_FORMAT`); either way an
//! end-of-run summary table lands on stderr. `--obs-json FILE` (or
//! `P10SIM_OBS_JSON`) additionally serializes that summary as one JSON
//! object for scripts.
//!
//! Every run also appends one `RunRecord` JSON line to the persistent
//! run ledger (`target/p10sim-ledger/`, overridable with `P10SIM_LEDGER`
//! or `--ledger-dir`, disabled with `--no-ledger`) — see
//! `p10_obs::ledger`. The `obsreport` pseudo-experiment reads that
//! history back: it prints wall-time/cache/coverage trends for the
//! latest run against a baseline (`--baseline` selects one; default is
//! the previous comparable run) and with `--gate PCT` exits non-zero
//! when the latest run regressed more than `PCT` percent (deltas under
//! `--min-s` seconds never gate). `<experiment>` is one of:
//! `table1 fig2 fig4 fig5 fig6 socket fig10 fig11 fig12 fig13 fig14
//! fig15a fig15b flushes coverage apex-speedup wof tracepoints
//! sensitivity smt tracking droop profile sampling obsreport all` —
//! `profile` (the cycle-attribution tables), `sampling` (the
//! exact-vs-sampled error/speedup study, whose wall-clock numbers vary
//! run to run) and `obsreport` run on demand only and are not part of
//! `all`, which keeps `all`'s stdout stable across additions.
//!
//! Stdout discipline: ledger, trace, and obs-json outputs never touch
//! experiment stdout — `figures all` stdout is byte-identical with all
//! of them enabled or disabled (wall-clock data lives on stderr and in
//! the ledger only).

use p10_bench::{suite, FULL_OPS};
use p10_core::powerstudies::{
    build_dataset, build_datasets, run_fig11, run_fig12, run_fig15a, run_fig15b, Target,
};
use p10_core::runner;
use p10_core::sampling::{self, SamplingMode};
use p10_core::{ablation, flush, gemm, inference, rasstudy, scenario, socket, table1, tracestudy};
use p10_kernels::models::{bert_large, resnet50};
use p10_powermgmt::wof;
use p10_uarch::CoreConfig;
use p10_workloads::chopstix;
use serde_json::json;

const EXPERIMENTS: [&str; 22] = [
    "table1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "socket",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15a",
    "fig15b",
    "flushes",
    "coverage",
    "apex-speedup",
    "wof",
    "tracepoints",
    "sensitivity",
    "smt",
    "tracking",
    "droop",
];

struct Opts {
    json: bool,
    ops: u64,
    out: Option<std::path::PathBuf>,
    jobs: usize,
    no_cache: bool,
    no_trace_arena: bool,
    trace_out: Option<std::path::PathBuf>,
    trace_format: Option<p10_obs::TraceFormat>,
    obs_json: Option<std::path::PathBuf>,
    ledger_dir: Option<std::path::PathBuf>,
    no_ledger: bool,
    baseline: Option<String>,
    gate: Option<f64>,
    min_s: f64,
    sampling: Option<SamplingMode>,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: figures <experiment> [--json] [--ops N] [--out DIR] [--jobs N] [--no-cache] [--no-trace-arena] [--trace-out FILE] [--trace-format jsonl|chrome] [--obs-json FILE] [--ledger-dir DIR] [--no-ledger] [--sampling MODE]"
    );
    eprintln!(
        "       figures obsreport [--ledger-dir DIR] [--baseline SEL] [--gate PCT] [--min-s SECS]"
    );
    eprintln!(
        "sampling modes: exact | simpoints:INTERVAL:K[:WARMUP] | learned:INTERVAL:K[:FEATURES]"
    );
    eprintln!(
        "experiments: {} profile sampling obsreport all",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

/// Parses a `--trace-format` / `P10SIM_TRACE_FORMAT` value.
fn parse_trace_format(v: &str) -> p10_obs::TraceFormat {
    match v {
        "jsonl" | "json-lines" => p10_obs::TraceFormat::JsonLines,
        "chrome" => p10_obs::TraceFormat::Chrome,
        other => usage_error(&format!(
            "invalid trace format '{other}' (expected jsonl or chrome)"
        )),
    }
}

/// Parses the command line strictly: malformed values and unknown
/// experiments or flags abort with a clear message instead of silently
/// running something else.
fn parse_args(args: &[String]) -> (String, Opts) {
    let mut what: Option<String> = None;
    let mut opts = Opts {
        json: false,
        ops: FULL_OPS,
        out: None,
        jobs: 0,
        no_cache: false,
        no_trace_arena: false,
        trace_out: None,
        trace_format: None,
        obs_json: None,
        ledger_dir: None,
        no_ledger: false,
        baseline: None,
        gate: None,
        min_s: 0.05,
        sampling: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut flag_value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
                .clone()
        };
        match arg {
            "--json" => opts.json = true,
            "--no-cache" => opts.no_cache = true,
            "--no-trace-arena" => opts.no_trace_arena = true,
            "--ops" => {
                let v = flag_value("--ops");
                opts.ops = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --ops value '{v}'")));
                if opts.ops == 0 {
                    usage_error("--ops must be positive");
                }
            }
            "--jobs" => {
                let v = flag_value("--jobs");
                opts.jobs = v
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("invalid --jobs value '{v}'")));
                if opts.jobs == 0 {
                    usage_error("--jobs must be positive");
                }
            }
            "--out" => opts.out = Some(std::path::PathBuf::from(flag_value("--out"))),
            "--trace-out" => {
                opts.trace_out = Some(std::path::PathBuf::from(flag_value("--trace-out")));
            }
            "--trace-format" => {
                opts.trace_format = Some(parse_trace_format(&flag_value("--trace-format")));
            }
            "--obs-json" => {
                opts.obs_json = Some(std::path::PathBuf::from(flag_value("--obs-json")));
            }
            "--ledger-dir" => {
                opts.ledger_dir = Some(std::path::PathBuf::from(flag_value("--ledger-dir")));
            }
            "--no-ledger" => opts.no_ledger = true,
            "--baseline" => opts.baseline = Some(flag_value("--baseline")),
            "--gate" => {
                let v = flag_value("--gate");
                opts.gate = Some(
                    v.parse()
                        .ok()
                        .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                        .unwrap_or_else(|| usage_error(&format!("invalid --gate value '{v}'"))),
                );
            }
            "--min-s" => {
                let v = flag_value("--min-s");
                opts.min_s = v
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                    .unwrap_or_else(|| usage_error(&format!("invalid --min-s value '{v}'")));
            }
            "--sampling" => {
                let v = flag_value("--sampling");
                opts.sampling = Some(SamplingMode::parse(&v).unwrap_or_else(|e| usage_error(&e)));
            }
            flag if flag.starts_with('-') => usage_error(&format!("unknown flag '{flag}'")),
            exp => {
                if what.is_some() {
                    usage_error(&format!("more than one experiment given ('{exp}')"));
                }
                if exp != "all"
                    && exp != "profile"
                    && exp != "sampling"
                    && exp != "obsreport"
                    && !EXPERIMENTS.contains(&exp)
                {
                    usage_error(&format!("unknown experiment '{exp}'"));
                }
                what = Some(exp.to_owned());
            }
        }
        i += 1;
    }
    let what = what.unwrap_or_else(|| "all".to_owned());
    if what != "obsreport" && (opts.gate.is_some() || opts.baseline.is_some()) {
        usage_error("--gate/--baseline only apply to the obsreport experiment");
    }
    (what, opts)
}

/// With `--out DIR`, re-runs the experiment as a child process in
/// `--json` mode and stores its stdout as `DIR/<name>.json` (the run
/// itself still prints human-readable output first). Experiments are
/// deterministic, so the artifact matches what was just shown — and the
/// child shares the parent's warm on-disk cache, so it skips the
/// simulations the parent just ran.
fn write_artifact(opts: &Opts, name: &str) {
    let Some(dir) = &opts.out else { return };
    std::fs::create_dir_all(dir).expect("create --out dir");
    let exe = std::env::current_exe().expect("own path");
    let mut args = vec![
        name.to_owned(),
        "--json".to_owned(),
        "--no-ledger".to_owned(),
        "--ops".to_owned(),
        opts.ops.to_string(),
    ];
    if opts.jobs != 0 {
        args.push("--jobs".to_owned());
        args.push(opts.jobs.to_string());
    }
    if opts.no_cache {
        args.push("--no-cache".to_owned());
    }
    if opts.no_trace_arena {
        args.push("--no-trace-arena".to_owned());
    }
    if let Some(mode) = &opts.sampling {
        args.push("--sampling".to_owned());
        args.push(mode.describe());
    }
    // The child is a throwaway re-run for the JSON payload: never let it
    // append to (or clobber) the parent's trace, obs-json, or ledger.
    let output = std::process::Command::new(exe)
        .args(&args)
        .env_remove("P10SIM_TRACE")
        .env_remove("P10SIM_OBS_JSON")
        .output()
        .expect("re-run experiment for artifact");
    assert!(
        output.status.success(),
        "artifact run for {name} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // The experiment prints its header before the JSON payload; keep
    // only the payload (first line starting with '{' or '[').
    let text = String::from_utf8_lossy(&output.stdout);
    let payload_start = text
        .lines()
        .scan(0usize, |off, line| {
            let this = *off;
            *off += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, line)| line.starts_with('{') || line.starts_with('['))
        .map_or(0, |(off, _)| off);
    std::fs::write(dir.join(format!("{name}.json")), &text[payload_start..])
        .expect("write artifact");
    println!("    [artifact: {}/{name}.json]", dir.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (what, opts) = parse_args(&args);
    let started_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);

    // obsreport is pure ledger analysis: no recorder, engine, or
    // simulation — read the history, report, and exit.
    if what == "obsreport" {
        std::process::exit(do_obsreport(&opts));
    }

    // Observability first, so every later span/counter lands in the same
    // recorder. The trace sink comes from --trace-out, else P10SIM_TRACE;
    // its format from --trace-format, else P10SIM_TRACE_FORMAT.
    let trace_path = opts
        .trace_out
        .clone()
        .or_else(|| std::env::var_os("P10SIM_TRACE").map(std::path::PathBuf::from));
    let trace_format = opts
        .trace_format
        .or_else(|| {
            std::env::var("P10SIM_TRACE_FORMAT")
                .ok()
                .map(|v| parse_trace_format(&v))
        })
        .unwrap_or_default();
    p10_obs::init(&p10_obs::ObsConfig {
        trace_path,
        trace_format,
    });
    p10_obs::set_thread_name("main");

    if opts.no_trace_arena {
        p10_workloads::arena::set_enabled(false);
    }

    // Sampling mode: --sampling wins, then P10SIM_SAMPLING, then exact.
    // Installed once before any experiment runs; the engine's benchmark
    // dispatch consults it for every simulation point.
    let sampling_mode = opts.sampling.or_else(|| {
        std::env::var("P10SIM_SAMPLING")
            .ok()
            .map(|v| SamplingMode::parse(&v).unwrap_or_else(|e| usage_error(&e)))
    });
    let sampling_key = sampling_mode.map_or_else(|| "exact".to_owned(), |m| m.describe());
    if let Some(mode) = sampling_mode {
        sampling::set_mode(mode);
        if !mode.is_exact() {
            eprintln!("[figures] sampled execution: {}", mode.describe());
        }
    }

    // All experiment drivers run on the shared engine: a worker pool plus
    // in-process memo and (unless --no-cache) the on-disk result cache.
    runner::configure(runner::EngineConfig {
        jobs: opts.jobs,
        disk_cache: (!opts.no_cache).then(runner::default_cache_dir),
        progress: true,
    });
    eprintln!(
        "[figures] {} worker(s), disk cache {}",
        runner::engine().jobs(),
        if opts.no_cache {
            "off".to_owned()
        } else {
            runner::default_cache_dir().display().to_string()
        }
    );

    let experiments: Vec<&str> = if what == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![what.as_str()]
    };

    for &e in &experiments {
        let sp = p10_obs::span(e);
        match e {
            "table1" => do_table1(&opts),
            "fig2" => do_fig2(&opts),
            "fig4" => do_fig4(&opts),
            "fig5" => do_fig5(&opts),
            "fig6" => do_fig6(&opts),
            "socket" => do_socket(&opts),
            "fig10" => do_fig10(&opts),
            "fig11" => do_fig11(&opts),
            "fig12" => do_fig12(&opts),
            "fig13" => do_fig13(&opts),
            "fig14" => do_fig14(&opts),
            "fig15a" => do_fig15a(&opts),
            "fig15b" => do_fig15b(&opts),
            "flushes" => do_flushes(&opts),
            "coverage" => do_coverage(&opts),
            "apex-speedup" => do_apex_speedup(&opts),
            "wof" => do_wof(&opts),
            "tracepoints" => do_tracepoints(&opts),
            "sensitivity" => do_sensitivity(&opts),
            "smt" => do_smt(&opts),
            "tracking" => do_tracking(&opts),
            "droop" => do_droop(&opts),
            "profile" => do_profile(&opts),
            "sampling" => do_sampling(&opts),
            // parse_args validated the experiment name already.
            other => unreachable!("unvalidated experiment '{other}'"),
        }
        let secs = sp.finish();
        eprintln!("[figures] {e}: {secs:.2}s");
        write_artifact(&opts, e);
    }

    // Observation effectiveness: the share of observed simulation cycles
    // delivered as closed-form spans instead of live steps (1.0 = every
    // observed cycle rode the fast path). Derived from the counters the
    // rtlsim/apex observers record, then shown as a gauge in the summary.
    let s = p10_obs::summary();
    let total = |name: &str| {
        s.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let live = total("sim.observed_live_cycles");
    let span = total("sim.observed_span_cycles");
    if live + span > 0 {
        #[allow(clippy::cast_precision_loss)]
        p10_obs::gauge("sim.span_hit_rate", span as f64 / (live + span) as f64);
    }

    // Trace-arena effectiveness: the share of trace requests served
    // zero-copy from a cached buffer (1.0 = every request after the first
    // synthesis of each distinct trace).
    let arena_hits = total("trace.arena.hits");
    let arena_misses = total("trace.arena.misses");
    if arena_hits + arena_misses > 0 {
        #[allow(clippy::cast_precision_loss)]
        p10_obs::gauge(
            "trace.arena.hit_rate",
            arena_hits as f64 / (arena_hits + arena_misses) as f64,
        );
    }

    // Sampled-execution coverage: the fraction of trace ops whose timing
    // was simulated directly rather than reconstituted from a cluster
    // representative (1.0 = exact execution).
    let sampled = total("sim.sample.simulated_ops");
    let skipped = total("sim.sample.skipped_ops");
    if sampled + skipped > 0 {
        #[allow(clippy::cast_precision_loss)]
        p10_obs::gauge(
            "sim.sample.coverage",
            sampled as f64 / (sampled + skipped) as f64,
        );
    }

    // Worker utilization: each worker slot's busy seconds as a fraction
    // of total run wall time (derived from the busy_us counters the
    // runner records per pool).
    if s.total_wall_s > 0.0 {
        for c in &s.counters {
            if let Some(slot) = c
                .name
                .strip_prefix("engine.")
                .and_then(|r| r.strip_suffix(".busy_us"))
            {
                #[allow(clippy::cast_precision_loss)]
                p10_obs::gauge(
                    &format!("runner.{slot}.busy_frac"),
                    c.value as f64 / 1e6 / s.total_wall_s,
                );
            }
        }
    }

    // Flush thread-local buffers and print the run summary (phase wall
    // times, cache layer hits, per-worker job counts) on stderr — stdout
    // stays reserved for the deterministic experiment output.
    let final_summary = p10_obs::summary();
    eprint!("{}", p10_obs::render_summary(&final_summary));

    // Machine-readable mirrors of that summary: --obs-json (one JSON
    // object) and the persistent run ledger (one RunRecord line).
    let obs_json = opts
        .obs_json
        .clone()
        .or_else(|| std::env::var_os("P10SIM_OBS_JSON").map(std::path::PathBuf::from));
    if let Some(path) = obs_json {
        match serde_json::to_string(&final_summary) {
            Ok(line) => {
                if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
                    eprintln!("[figures] cannot write obs json {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("[figures] cannot serialize obs summary: {e}"),
        }
    }
    if !opts.no_ledger {
        let eng_cfg = runner::engine().config();
        let identity = p10_obs::ledger::RunIdentity {
            experiment: what.clone(),
            config_text: format!(
                "jobs={}|disk_cache={}|arena={}|sampling={sampling_key}",
                eng_cfg.jobs,
                eng_cfg.disk_cache.is_some(),
                !opts.no_trace_arena
            ),
            workload_text: format!("{}|ops={}", experiments.join(","), opts.ops),
            sampling_key: sampling_key.clone(),
            ops: opts.ops,
            jobs: eng_cfg.jobs as u64,
            started_unix_ms,
        };
        let record = p10_obs::ledger::RunRecord::from_summary(&identity, final_summary);
        let dir = opts
            .ledger_dir
            .clone()
            .unwrap_or_else(p10_obs::ledger::default_dir);
        match p10_obs::ledger::append(&dir, &record) {
            Ok(path) => eprintln!(
                "[figures] ledger: run {} appended to {}",
                record.run_id,
                path.display()
            ),
            Err(e) => eprintln!("[figures] ledger append failed ({}): {e}", dir.display()),
        }
    }

    // Last: a Chrome-format trace buffers in memory and is written here.
    p10_obs::finalize();
}

/// Selects the baseline run for `obsreport`: `--baseline` as a 1-based
/// index into the comparable pool (1 = oldest) or a `run_id` prefix;
/// without `--baseline`, the most recent comparable prior run.
fn pick_baseline<'a>(
    pool: &[&'a p10_obs::ledger::RunRecord],
    selector: Option<&str>,
) -> Result<Option<&'a p10_obs::ledger::RunRecord>, String> {
    let Some(sel) = selector else {
        return Ok(pool.last().copied());
    };
    if let Ok(idx) = sel.parse::<usize>() {
        return idx
            .checked_sub(1)
            .and_then(|i| pool.get(i).copied())
            .map(Some)
            .ok_or_else(|| {
                format!(
                    "--baseline index {sel} out of range (pool has {} comparable runs)",
                    pool.len()
                )
            });
    }
    pool.iter()
        .find(|r| r.run_id.starts_with(sel))
        .copied()
        .map(Some)
        .ok_or_else(|| format!("no comparable run with id prefix '{sel}'"))
}

/// The `obsreport` driver: reads ledger history, prints the latest run's
/// wall-time/cache/coverage trends against a baseline, and applies the
/// `--gate` regression check. Returns the process exit code.
fn do_obsreport(opts: &Opts) -> i32 {
    use p10_obs::ledger;
    let dir = opts.ledger_dir.clone().unwrap_or_else(ledger::default_dir);
    let runs = match ledger::read(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot read ledger {}: {e}", dir.display());
            return 1;
        }
    };
    println!("=== obsreport: {} ({} runs) ===", dir.display(), runs.len());
    let Some(latest) = runs.last() else {
        println!("ledger is empty; run any `figures` experiment first");
        return i32::from(opts.gate.is_some());
    };
    let prior = &runs[..runs.len() - 1];
    let pool = ledger::comparable(prior, latest);
    println!(
        "latest: run {}  experiment={} ops={} sampling={} jobs={}  [{} {}, {} cpus]",
        latest.run_id,
        latest.experiment,
        latest.ops,
        latest.sampling_key,
        latest.jobs,
        latest.build.profile,
        latest.machine.arch,
        latest.machine.cpus
    );

    // Short history of comparable runs, oldest first (latest included).
    println!(
        "history ({} comparable runs, oldest first):",
        pool.len() + 1
    );
    println!(
        "  {:>3} {:<16} {:>9} {:>7} {:>7} {:>9}",
        "#", "run", "wall", "cache%", "arena%", "coverage"
    );
    for (i, r) in pool.iter().chain(std::iter::once(&latest)).enumerate() {
        println!(
            "  {:>3} {:<16} {:>8.2}s {:>6.1}% {:>6.1}% {:>9.3}",
            i + 1,
            r.run_id,
            r.wall_s,
            r.cache.hit_rate() * 100.0,
            r.arena.hit_rate * 100.0,
            r.sampling.coverage
        );
    }

    let baseline = match pick_baseline(&pool, opts.baseline.as_deref()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let Some(baseline) = baseline else {
        println!("no comparable prior run to compare against");
        if opts.gate.is_some() {
            eprintln!("error: --gate needs a comparable baseline run in the ledger");
            return 1;
        }
        return 0;
    };

    // Per-phase wall-time trend vs the baseline.
    println!("trend vs baseline {}:", baseline.run_id);
    println!(
        "  {:<46} {:>9} {:>9} {:>8}",
        "phase", "baseline", "latest", "delta"
    );
    let delta_pct = |base: f64, new: f64| {
        if base > 0.0 {
            (new / base - 1.0) * 100.0
        } else {
            0.0
        }
    };
    for p in &latest.summary.phases {
        if let Some(base) = baseline.phase_wall_s(&p.name) {
            println!(
                "  {:<46} {:>8.2}s {:>8.2}s {:>+7.1}%",
                p.name,
                base,
                p.wall_s,
                delta_pct(base, p.wall_s)
            );
        }
    }
    println!(
        "  {:<46} {:>8.2}s {:>8.2}s {:>+7.1}%",
        "total",
        baseline.wall_s,
        latest.wall_s,
        delta_pct(baseline.wall_s, latest.wall_s)
    );
    println!(
        "cache hit rate {:.1}% -> {:.1}%   arena hit rate {:.1}% -> {:.1}%   coverage {:.3} -> {:.3}",
        baseline.cache.hit_rate() * 100.0,
        latest.cache.hit_rate() * 100.0,
        baseline.arena.hit_rate * 100.0,
        latest.arena.hit_rate * 100.0,
        baseline.sampling.coverage,
        latest.sampling.coverage
    );
    for w in &latest.workers {
        println!(
            "worker {:<10} jobs={:<4} busy={:.2}s ({:.0}% of wall)",
            w.worker,
            w.jobs,
            w.busy_s,
            w.busy_frac * 100.0
        );
    }

    let Some(pct) = opts.gate else { return 0 };
    let regressions = ledger::gate(baseline, latest, pct, opts.min_s);
    if regressions.is_empty() {
        println!(
            "gate: PASS (no wall-time regression beyond {pct}% and {:.2}s)",
            opts.min_s
        );
        return 0;
    }
    for r in &regressions {
        println!(
            "gate: REGRESSION {} {:.2}s -> {:.2}s ({:+.1}% > {pct}%)",
            r.phase, r.baseline_s, r.latest_s, r.delta_pct
        );
    }
    println!("gate: FAIL ({} regression(s))", regressions.len());
    1
}

fn header(title: &str, paper: &str) {
    println!("\n=== {title} ===");
    println!("    paper reference: {paper}");
}

fn do_table1(o: &Opts) {
    header(
        "Table I — chip features & efficiency projections",
        "2.6x core perf/W, up to 3x socket",
    );
    let t = table1::run_table1(&suite(), 42, o.ops);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&t).expect("json"));
        return;
    }
    println!("SMT per core                  : {}", t.smt_per_core);
    println!(
        "L2 per SMT8 core              : {:.1} MiB (paper: 2 MiB)",
        t.l2_per_core_mib
    );
    println!(
        "MMU (TLB) ratio vs POWER9     : {:.1}x (paper: 4x)",
        t.mmu_ratio
    );
    println!(
        "Core perf ratio               : {:.2}x (paper: ~1.3x)",
        t.perf_ratio
    );
    println!(
        "Core power ratio              : {:.2}x (paper: ~0.5x)",
        t.power_ratio
    );
    println!(
        "Core performance/watt         : {:.2}x (paper: 2.6x)",
        t.perf_per_watt_core
    );
    println!(
        "Socket-view efficiency (SMT2) : {:.2}x (paper: up to 3x)",
        t.socket_efficiency
    );
}

fn do_fig2(o: &Opts) {
    header(
        "Fig. 2 — optimal pipeline depth",
        "optimum stable at 27 FO4 for 0.5x-1.0x power targets",
    );
    let f = p10_pipedepth::run_fig2(&p10_pipedepth::DepthParams::default(), &[0.25]);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    for &t in &f.power_targets {
        println!("power target {t:.2}x: optimal FO4 = {}", f.optimal_fo4(t));
    }
    println!("curve (target=1.0): fo4 -> BIPS");
    for p in f
        .points
        .iter()
        .filter(|p| (p.power_target - 1.0).abs() < 1e-9)
        .step_by(4)
    {
        println!("  {:>4.0}  {:.3}", p.fo4, p.bips);
    }
}

fn do_fig4(o: &Opts) {
    header(
        "Fig. 4 — per-design-change performance gains",
        "SMT8 SPECint: branch 4%, lat+BW 10%, L2 9%, decode+VSX 5%, queues 4%",
    );
    let f = ablation::run_fig4(&suite(), 42, o.ops / 2);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    println!(
        "{:<20} {:>8} {:>8} {:>8}  max workload",
        "group", "ST", "SMT", "max"
    );
    for r in &f.rows {
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>7.1}%  {}",
            r.group,
            r.st_gain * 100.0,
            r.smt_gain * 100.0,
            r.max_gain * 100.0,
            r.max_workload
        );
    }
}

fn do_fig5(o: &Opts) {
    header(
        "Fig. 5 — DGEMM flops/cycle & core power",
        "P10 VSU 1.95x @ -32.2%; P10 MMA 5.47x @ -24.1%; 62.1%/87.1% of peak",
    );
    let f = gemm::run_fig5(o.ops);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    for p in [&f.p9_vsu, &f.p10_vsu, &f.p10_mma] {
        println!(
            "{:<24} {:>6.2} flops/cyc ({:>5.1}% of peak)  core power {:>7.1}",
            p.label,
            p.flops_per_cycle,
            p.peak_utilization * 100.0,
            p.core_power
        );
    }
    println!(
        "VSU speedup {:.2}x (paper 1.95x)   power {:+.1}% (paper -32.2%)",
        f.vsu_speedup(),
        f.vsu_power_delta() * 100.0
    );
    println!(
        "MMA speedup {:.2}x (paper 5.47x)   power {:+.1}% (paper -24.1%)",
        f.mma_speedup(),
        f.mma_power_delta() * 100.0
    );
}

/// Fig. 6 for one model, through the engine cache (the socket experiment
/// needs the same runs, and warm re-runs skip them entirely).
fn fig6_cached(model: &p10_kernels::models::ModelGraph, kernel_ops: u64) -> inference::Fig6Model {
    runner::cached(
        &format!("fig6 {} ops={kernel_ops}", model.name),
        &format!(
            "fig6|{}|{kernel_ops}",
            serde_json::to_string(model).expect("model serializes")
        ),
        || inference::run_fig6(model, kernel_ops),
    )
}

fn do_fig6(o: &Opts) {
    header(
        "Fig. 6 — end-to-end inference",
        "ResNet-50: 2.25x/3.55x; BERT-Large: 2.08x/3.64x (no-MMA/MMA)",
    );
    let models = [resnet50(100), bert_large(8, 384)];
    let figs = runner::run_jobs_par(&models, |_, m| fig6_cached(m, o.ops / 2));
    for f in figs {
        if o.json {
            println!("{}", serde_json::to_string_pretty(&f).expect("json"));
            continue;
        }
        println!("-- {} --", f.model);
        println!(
            "{:<16} {:>12} {:>12} {:>7} {:>10}",
            "config", "instructions", "cycles", "CPI", "GEMM-ratio"
        );
        for r in [&f.p9, &f.p10_no_mma, &f.p10_mma] {
            println!(
                "{:<16} {:>12.3e} {:>12.3e} {:>7.3} {:>10.2}",
                r.config,
                r.instructions,
                r.cycles,
                r.cpi(),
                r.gemm_inst_ratio
            );
        }
        println!(
            "speedups: no-MMA {:.2}x, MMA {:.2}x",
            f.speedup_no_mma(),
            f.speedup_mma()
        );
    }
}

fn do_socket(o: &Opts) {
    header(
        "Socket-level AI projections",
        "up to 10x FP32 and 21x INT8 over POWER9",
    );
    let p10 = CoreConfig::power10();
    let models = [resnet50(100), bert_large(8, 384)];
    let projections = runner::run_jobs_par(&models, |_, model| {
        let f = fig6_cached(model, o.ops / 2);
        let int8: inference::InferenceRun = runner::cached(
            &format!("int8 {} ops={}", model.name, o.ops / 2),
            &format!(
                "int8|{}|{}|{}",
                serde_json::to_string(model).expect("model serializes"),
                serde_json::to_string(&p10).expect("config serializes"),
                o.ops / 2
            ),
            || inference::compose_int8(model, &p10, o.ops / 2),
        );
        socket::project_socket_measured(&f, &int8, &socket::SocketScaling::default())
    });
    for p in projections {
        if o.json {
            println!("{}", serde_json::to_string_pretty(&p).expect("json"));
            continue;
        }
        println!(
            "{:<12} core {:.2}x  socket FP32 {:.1}x (paper up to 10x)  INT8 {:.1}x (paper up to 21x)",
            p.model, p.core_speedup, p.fp32_socket_speedup, p.int8_socket_speedup
        );
    }
}

fn do_fig10(o: &Opts) {
    header(
        "Fig. 10 — core-model vs chip-model power/IPC scatter",
        "memory-bound simpoints diverge between models",
    );
    let pts = p10_apex::run_fig10(&suite(), 4, o.ops / 10);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&pts).expect("json"));
        return;
    }
    println!(
        "{:<14} {:>4} {:>6} {:>8} {:>10}",
        "bench", "snip", "model", "IPC", "core power"
    );
    for p in &pts {
        println!(
            "{:<14} {:>4} {:>6} {:>8.3} {:>10.1}",
            p.bench,
            p.snippet,
            match p.model {
                p10_apex::ApexModel::Core => "core",
                p10_apex::ApexModel::Chip => "chip",
            },
            p.ipc,
            p.core_power
        );
    }
}

fn fig11_dataset(o: &Opts) -> p10_powermodel::Dataset {
    build_dataset(
        &CoreConfig::power10(),
        &suite(),
        &[1, 2],
        o.ops / 2,
        512,
        Target::ActivePower,
    )
}

fn do_fig11(o: &Opts) {
    header(
        "Fig. 11 — M1-linked power model error vs #inputs",
        "error falls with inputs; <2.5% active at max inputs",
    );
    let data = runner::timed("fig11 dataset", || fig11_dataset(o));
    let curves = runner::timed("fig11 regression", || run_fig11(&data, 12));
    if o.json {
        println!("{}", serde_json::to_string_pretty(&curves).expect("json"));
        return;
    }
    for c in &curves {
        println!("-- {} --", c.label);
        for p in &c.points {
            println!(
                "  inputs {:>2}: test err {:>6.2}%  train err {:>6.2}%",
                p.inputs, p.test_error_pct, p.train_error_pct
            );
        }
    }
}

fn do_fig12(o: &Opts) {
    header(
        "Fig. 12 — top-down vs bottom-up power models",
        "models differ by 3.42% on average; 72 events total bottom-up",
    );
    let cfg = CoreConfig::power10();
    let sweep_suite = suite();
    // One windowed-run pass feeds all 40 targets (total + 39 components).
    let targets: Vec<Target> = std::iter::once(Target::TotalPower)
        .chain((0..39).map(Target::Component))
        .collect();
    let mut datasets = build_datasets(&cfg, &sweep_suite[..6], &[1], o.ops / 3, 512, &targets);
    let total = datasets.remove(0);
    let components = datasets;
    let f = run_fig12(&total, &components, 12, 3);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    println!(
        "model difference   : {:.2}% (paper 3.42%)",
        f.mean_model_difference_pct
    );
    println!(
        "bottom-up events   : {} across 39 components (paper 72)",
        f.bottom_up_events
    );
    println!("top-down events    : {}", f.top_down_events);
    println!(
        "held-out error     : top-down {:.2}%, bottom-up {:.2}%",
        f.top_down_error_pct, f.bottom_up_error_pct
    );
}

fn do_fig13(o: &Opts) {
    header(
        "Fig. 13 — derating per testcase",
        "VT=10% leaves ~25% vulnerable; VT=90% ~52%",
    );
    let f = rasstudy::run_fig13(&CoreConfig::power10(), o.ops / 6, 3);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8}",
        "testcase", "static", "VT=10%", "VT=50%", "VT=90%"
    );
    for r in &f.rows {
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            r.testcase, r.static_pct, r.runtime_vt10, r.runtime_vt50, r.runtime_vt90
        );
    }
}

fn do_fig14(o: &Opts) {
    header(
        "Fig. 14 — POWER9 vs POWER10 derating vs VT",
        "P10 runtime derating higher (6%→21% gap); static ~10% lower",
    );
    let f = rasstudy::run_fig14(o.ops / 6, &[0.1, 0.3, 0.5, 0.7, 0.9]);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&f).expect("json"));
        return;
    }
    println!(
        "static derating: P9 {:.1}%  P10 {:.1}%",
        f.p9.static_pct, f.p10.static_pct
    );
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "VT", "P9 runtime", "P10 runtime", "gap"
    );
    for ((vt, r9), (_, r10)) in f.p9.runtime_by_vt.iter().zip(f.p10.runtime_by_vt.iter()) {
        println!(
            "{:>5.0}% {:>9.1}% {:>9.1}% {:>+7.1}%",
            vt * 100.0,
            r9,
            r10,
            r10 - r9
        );
    }
}

fn do_fig15a(o: &Opts) {
    header(
        "Fig. 15(a) — power-proxy error vs #counters",
        "16 counters → 9.8% active-power error (<5% incl. static)",
    );
    let data = fig11_dataset(o);
    let sweep = run_fig15a(&data, 16);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&sweep).expect("json"));
        return;
    }
    for p in &sweep {
        println!(
            "  counters {:>2}: active-power err {:>6.2}%",
            p.inputs, p.test_error_pct
        );
    }
}

fn do_fig15b(o: &Opts) {
    header(
        "Fig. 15(b) — proxy error vs time granularity",
        "predicting every >=50 cycles is near-best; finer degrades fast",
    );
    let pts = run_fig15b(
        &CoreConfig::power10(),
        &suite()[8],
        o.ops / 2,
        &[8, 16, 32, 64, 128, 256, 512],
        8,
        0.35,
    );
    if o.json {
        println!("{}", serde_json::to_string_pretty(&pts).expect("json"));
        return;
    }
    for p in &pts {
        println!(
            "  window {:>4} cycles: err {:>6.2}%",
            p.window_cycles, p.error_pct
        );
    }
}

fn do_flushes(o: &Opts) {
    header(
        "Flush study — wasted instructions",
        "-25% SPECint, -38% interpreted/analytics",
    );
    let s = flush::run_flush_study(42, o.ops / 2);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&s).expect("json"));
        return;
    }
    for r in &s.rows {
        println!(
            "{:<16} P9 {:>6.3} P10 {:>6.3} waste/inst  reduction {:>6.1}%",
            r.workload,
            r.p9_waste_per_inst,
            r.p10_waste_per_inst,
            r.reduction() * 100.0
        );
    }
    println!(
        "SPECint mean reduction      : {:.1}% (paper 25%)",
        s.specint_reduction() * 100.0
    );
    println!(
        "interpreted/analytics mean  : {:.1}% (paper 38%)",
        s.interpreted_reduction() * 100.0
    );
}

fn do_coverage(o: &Opts) {
    header(
        "Proxy coverage — Chopstix top-10 hot functions",
        "coverage 41% (gcc) to 99% (xz), ~70% average",
    );
    let workloads: Vec<_> = suite().iter().map(|b| b.workload(23)).collect();
    let rows = chopstix::coverage_table(&workloads, o.ops, 10);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
        return;
    }
    let mut sum = 0.0;
    for r in &rows {
        println!(
            "{:<16} proxies {:>2}  coverage {:>5.1}%",
            r.workload,
            r.proxies,
            r.coverage * 100.0
        );
        sum += r.coverage;
    }
    println!(
        "average coverage: {:.1}% (paper ~70%)",
        sum / rows.len() as f64 * 100.0
    );
}

fn do_apex_speedup(o: &Opts) {
    header(
        "APEX speedup — detailed vs counter-based extraction",
        "~5000x on AWAN hardware; software analog shows the asymmetry",
    );
    let b = &suite()[8];
    let t = b.workload(5).trace_or_panic(o.ops / 2);
    let s = p10_apex::measure_speedup(&CoreConfig::power10(), &t, 10_000_000);
    // Wall-clock numbers vary run to run; they go to the obs summary on
    // stderr so stdout stays byte-identical across runs.
    p10_obs::gauge("apex.detailed_s", s.detailed_secs);
    p10_obs::gauge("apex.apex_s", s.apex_secs);
    p10_obs::gauge("apex.speedup", s.speedup);
    eprintln!(
        "[figures] apex-speedup wall clock: detailed {:.3}s vs APEX {:.3}s -> {:.1}x",
        s.detailed_secs, s.apex_secs, s.speedup
    );
    if o.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&json!({
                "cycles": s.cycles,
                "windows": s.windows,
            }))
            .expect("json")
        );
        return;
    }
    println!(
        "APEX extracted {} counter windows over {} cycles (detailed run reads every cycle)",
        s.windows, s.cycles
    );
}

fn do_profile(o: &Opts) {
    header(
        "Cycle-attribution profile",
        "SS III methodology turned on the simulator itself: where cycles go",
    );
    let configs = [CoreConfig::power9(), CoreConfig::power10()];
    let rows = p10_core::cycleprof::run_profile(&configs, &suite(), 42, o.ops);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
        return;
    }
    println!(
        "{:<16} {:<10} {:>12} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload",
        "config",
        "cycles",
        "IPC",
        "active",
        "mma",
        "mem",
        "issue",
        "disp",
        "fetch",
        "idle"
    );
    for r in &rows {
        let a = r.attribution;
        println!(
            "{:<16} {:<10} {:>12} {:>6.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            r.workload,
            r.config,
            r.cycles,
            r.ipc,
            r.share(a.active),
            r.share(a.mma_gated),
            r.share(a.memory_bound),
            r.share(a.issue_limited),
            r.share(a.dispatch_stalled),
            r.share(a.fetch_stalled),
            r.share(a.idle)
        );
    }
}

fn do_wof(o: &Opts) {
    header(
        "WOF — workload-optimized frequency",
        "light workloads boost under the envelope; MMA gating reclaims leakage",
    );
    // Effective capacitance ratios from measured suite dynamic power.
    let cfg = CoreConfig::power10();
    let results = scenario::run_suite(&cfg, &suite(), 42, o.ops / 3);
    let ref_power = results
        .results
        .iter()
        .map(|r| r.power.active())
        .fold(0.0f64, f64::max);
    let wcfg = wof::WofConfig::typical();
    let mut rows = Vec::new();
    for r in &results.results {
        let ceff = wof::ceff_ratio(r.power.active(), ref_power);
        let d = wof::solve(&wcfg, ceff, 0.0);
        let d_gated = wof::solve(&wcfg, ceff, 2.0);
        rows.push(json!({
            "workload": r.workload,
            "ceff": ceff,
            "freq_ghz": d.point.freq,
            "boost": d.boost,
            "freq_with_mma_gated": d_gated.point.freq,
        }));
        if !o.json {
            println!(
                "{:<16} Ceff {:>5.2}  f = {:.2} GHz (boost {:>5.2}x), {:.2} GHz with MMA gated",
                r.workload, ceff, d.point.freq, d.boost, d_gated.point.freq
            );
        }
    }
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
    }
}

fn do_sensitivity(o: &Opts) {
    header(
        "Design-choice sensitivity",
        "SS II-B mechanisms toggled off one at a time on POWER10",
    );
    let rows = p10_core::sensitivity::run_sensitivity(&suite(), 42, o.ops / 2);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
        return;
    }
    println!(
        "{:<26} {:>10} {:>10} {:>12}",
        "mechanism", "perf", "power", "energy/inst"
    );
    for r in &rows {
        println!(
            "{:<26} {:>+9.1}% {:>+9.1}% {:>+11.1}%",
            r.label,
            r.perf_benefit * 100.0,
            r.power_benefit * 100.0,
            r.efficiency_benefit * 100.0
        );
    }
}

fn do_smt(o: &Opts) {
    header(
        "SMT throughput scaling",
        "Table I: 8-way SMT per core; deeper P10 queues sustain threads",
    );
    let suite = suite();
    let sel: Vec<_> = [8usize, 2, 7, 0]
        .iter()
        .map(|&i| suite[i].clone())
        .collect();
    let s = p10_core::smtscale::run_smt_scaling(&sel, 42, o.ops / 4);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&s).expect("json"));
        return;
    }
    println!(
        "{:<10} {:>8} {:>14} {:>9}",
        "machine", "threads", "aggregate IPC", "scaling"
    );
    for p in &s.points {
        println!(
            "{:<10} {:>8} {:>14.3} {:>8.2}x",
            p.config, p.threads, p.aggregate_ipc, p.scaling
        );
    }
}

fn do_tracking(o: &Opts) {
    header(
        "SS III-B tracked metrics",
        "IPC, core power, efficiency, latches, % clock enabled, switching",
    );
    let suite = suite();
    let sel = &suite[..4];
    let rows = [
        p10_core::tracking::track(&CoreConfig::power9(), sel, 42, o.ops / 6),
        p10_core::tracking::track(&CoreConfig::power10(), sel, 42, o.ops / 6),
    ];
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
        return;
    }
    println!(
        "{:<10} {:>6} {:>10} {:>11} {:>10} {:>9} {:>10} {:>9}",
        "machine", "IPC", "core pwr", "efficiency", "latches", "clk-en%", "potential", "obs/pot"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6.2} {:>10.1} {:>11.5} {:>10.0} {:>8.1}% {:>10.3} {:>9.2}",
            r.config,
            r.ipc,
            r.core_power,
            r.core_efficiency,
            r.latches,
            r.clock_enabled_pct,
            r.potential_switching,
            r.observed_ratio
        );
    }
}

fn do_droop(o: &Opts) {
    header(
        "Workload-transition droop",
        "SS IV-B: sudden workload change droops the rail; the DDS clips it",
    );
    use p10_powermgmt::throttle::{demand_from_power, simulate_droop, DroopSensor, PdnModel};
    // Real transition: idle-ish scalar loop into the MMA DGEMM kernel.
    let scalar = suite()[8].workload(3).trace_or_panic(o.ops / 8);
    let mut ops_list = scalar.ops;
    let kernel = p10_kernels::gemm::dgemm_mma(1 << 40).trace_or_panic(o.ops / 4);
    // The kernel workload uses its own memory image; for the droop demand
    // we only need the power series, so run the two phases separately.
    let cfg = CoreConfig::power10();
    let model = p10_power::PowerModel::for_config(&cfg);
    let phase_power = |trace: p10_isa::Trace| -> Vec<f64> {
        let report = p10_apex::run_apex(&cfg, vec![trace], 256, 10_000_000);
        report
            .windows
            .iter()
            .map(|w| model.evaluate(&w.activity).core_total())
            .collect()
    };
    ops_list.truncate(o.ops as usize / 8);
    let mut powers = phase_power(p10_isa::Trace { ops: ops_list });
    let p_ref = powers.iter().copied().fold(0.0f64, f64::max).max(1.0);
    powers.extend(phase_power(kernel));
    let demand = demand_from_power(&powers, p_ref);
    let pdn = PdnModel::default();
    let free = simulate_droop(&pdn, None, &demand);
    let protected = simulate_droop(&pdn, Some(&DroopSensor::default()), &demand);
    if o.json {
        println!(
            "{}",
            serde_json::json!({
                "max_droop_unprotected": free.max_droop,
                "max_droop_with_dds": protected.max_droop,
                "engagements": protected.engagements,
                "windows": demand.len(),
            })
        );
        return;
    }
    println!(
        "scalar -> MMA-kernel transition over {} power windows:",
        demand.len()
    );
    println!(
        "worst droop without DDS {:.1}%  |  with DDS {:.1}% ({} engagements)",
        free.max_droop * 100.0,
        protected.max_droop * 100.0,
        protected.engagements
    );
}

/// The default study mode when the CLI didn't ask for a specific one:
/// ~64 intervals across the op budget with a 1/8-interval warmup. The
/// interval floor keeps per-interval measurement above the granularity
/// where boundary residue dominates; small budgets therefore degrade
/// gracefully toward exact (fewer intervals, most of them simulated).
fn default_sampling_mode(ops: u64) -> SamplingMode {
    let interval_ops = usize::try_from(ops / 64).unwrap_or(usize::MAX).max(2500);
    SamplingMode::SimPoints {
        interval_ops,
        k: 8,
        warmup_ops: interval_ops / 8,
    }
}

fn do_sampling(o: &Opts) {
    header(
        "Sampled simulation — exact vs SimPoint-weighted execution",
        "representative-interval sampling with statistical error bounds",
    );
    // The study always runs both sides itself (uncached, so wall times
    // are honest): exact as ground truth, sampled in the CLI's mode (or
    // a budget-scaled default when the CLI mode is exact/absent).
    let mode = o
        .sampling
        .filter(|m| !m.is_exact())
        .unwrap_or_else(|| default_sampling_mode(o.ops));
    let cfg = CoreConfig::power10();
    let suite = suite();
    let benches = &suite[7..10];
    println!("mode: {}  ops/workload: {}", mode.describe(), o.ops);
    let mut rows = Vec::new();
    let mut all_ok = true;
    let mut speedup_sum = 0.0;
    for b in benches {
        let t0 = std::time::Instant::now();
        let exact = scenario::run_benchmark(&cfg, b, 42, o.ops);
        let exact_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let s = sampling::run_benchmark_sampled(&cfg, b, 42, o.ops, &mode);
        let sampled_s = t1.elapsed().as_secs_f64();
        sampling::record_obs(&s.stats);

        let cpi_err = (s.stats.cpi_est - exact.sim.cpi()).abs() / exact.sim.cpi().max(1e-12);
        let power_err =
            (s.stats.power_est - exact.core_power()).abs() / exact.core_power().max(1e-12);
        let within = cpi_err <= s.stats.cpi_bound_rel && power_err <= s.stats.power_bound_rel;
        let speedup = exact_s / sampled_s.max(1e-9);
        all_ok &= within;
        speedup_sum += speedup;
        rows.push(json!({
            "workload": b.name,
            "mode": s.stats.mode,
            "exact_cpi": exact.sim.cpi(),
            "sampled_cpi": s.stats.cpi_est,
            "cpi_rel_err": cpi_err,
            "cpi_bound_rel": s.stats.cpi_bound_rel,
            "exact_core_power": exact.core_power(),
            "sampled_core_power": s.stats.power_est,
            "power_rel_err": power_err,
            "power_bound_rel": s.stats.power_bound_rel,
            "simulated_ops": s.stats.simulated_ops,
            "skipped_ops": s.stats.skipped_ops,
            "intervals": s.stats.intervals,
            "clusters": s.stats.clusters,
            "exact_s": exact_s,
            "sampled_s": sampled_s,
            "speedup": speedup,
            "within_bound": within,
        }));
        if !o.json {
            println!(
                "{:<16} CPI {:>6.3} -> {:>6.3} (err {:>4.1}% <= bound {:>4.1}%)  \
                 power {:>6.1} -> {:>6.1} W (err {:>4.1}% <= bound {:>4.1}%)  {}",
                b.name,
                exact.sim.cpi(),
                s.stats.cpi_est,
                cpi_err * 100.0,
                s.stats.cpi_bound_rel * 100.0,
                exact.core_power(),
                s.stats.power_est,
                power_err * 100.0,
                s.stats.power_bound_rel * 100.0,
                if within { "OK" } else { "VIOLATED" }
            );
            println!(
                "{:<16} simulated {}/{} ops over {} intervals ({} clusters)  \
                 wall {:.2}s -> {:.2}s  speedup {:.1}x",
                "",
                s.stats.simulated_ops,
                s.stats.total_ops,
                s.stats.intervals,
                s.stats.clusters,
                exact_s,
                sampled_s,
                speedup
            );
        }
    }
    if o.json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("json"));
        return;
    }
    #[allow(clippy::cast_precision_loss)]
    let mean_speedup = speedup_sum / rows.len() as f64;
    println!(
        "error bound check: {}  mean speedup {:.1}x",
        if all_ok { "OK" } else { "VIOLATED" },
        mean_speedup
    );
}

fn do_tracepoints(o: &Opts) {
    header(
        "Tracepoints vs Simpoints",
        "counter-histogram epochs beat BBVs on phased/interpreted code",
    );
    let w = p10_workloads::suite::phased_pointer_chase(2_000);
    let s = tracestudy::run_trace_study(&CoreConfig::power10(), &w, o.ops, 1_500, 3);
    if o.json {
        println!("{}", serde_json::to_string_pretty(&s).expect("json"));
        return;
    }
    println!(
        "full CPI {:.3} | simpoint est {:.3} (err {:.1}%) | tracepoint est {:.3} (err {:.1}%)",
        s.full_cpi,
        s.simpoint_cpi,
        s.simpoint_error * 100.0,
        s.tracepoint_cpi,
        s.tracepoint_error * 100.0
    );
}
