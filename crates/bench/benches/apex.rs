//! §III-C bench: detailed (RTLSim) versus accelerated (APEX) power
//! extraction — the speedup the paper quotes as ~5000x on AWAN hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use p10_apex::run_apex;
use p10_bench::QUICK_OPS;
use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
use p10_uarch::CoreConfig;
use p10_workloads::specint_like;

fn bench_extraction(c: &mut Criterion) {
    let trace = specint_like()[8].workload(1).trace_or_panic(QUICK_OPS);
    let cfg = CoreConfig::power10();
    let mut g = c.benchmark_group("power_extraction");
    g.sample_size(10);
    g.bench_function("rtlsim_detailed", |b| {
        b.iter(|| {
            run_detailed(
                &cfg,
                vec![trace.clone()],
                Roi::new(0, 10_000_000),
                ToggleDensity::default(),
            )
        });
    });
    g.bench_function("apex_windowed", |b| {
        b.iter(|| run_apex(&cfg, vec![trace.clone()], 4096, 10_000_000));
    });
    g.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
