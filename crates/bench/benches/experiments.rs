//! Scaled-down end-to-end experiment regeneration: Table I, Fig. 2,
//! Fig. 4 (one group), Fig. 6, the flush study, WOF/PFLY, and SERMiner.

use criterion::{criterion_group, criterion_main, Criterion};
use p10_bench::{small_suite, QUICK_OPS};
use p10_core::{flush, inference, table1};
use p10_kernels::models::resnet50;
use p10_powermgmt::{pfly, wof};
use p10_workloads::specint_like;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1_mini", |b| {
        b.iter(|| table1::run_table1(&small_suite(), 42, QUICK_OPS / 2));
    });
    g.bench_function("fig2_pipedepth", |b| {
        b.iter(|| p10_pipedepth::run_fig2(&p10_pipedepth::DepthParams::default(), &[0.25]));
    });
    g.bench_function("fig6_resnet", |b| {
        let model = resnet50(100);
        b.iter(|| inference::run_fig6(&model, QUICK_OPS / 2));
    });
    g.bench_function("flush_study_mini", |b| {
        b.iter(|| flush::run_flush_study(42, QUICK_OPS / 2));
    });
    g.bench_function("wof_sweep", |b| {
        let cfg = wof::WofConfig::typical();
        b.iter(|| {
            (0..100)
                .map(|i| wof::solve(&cfg, 0.5 + f64::from(i) * 0.01, 0.0).point.freq)
                .sum::<f64>()
        });
    });
    g.bench_function("pfly_population", |b| {
        let chips = pfly::population(&pfly::ProcessParams::default(), 500, 1);
        let offering = pfly::Offering {
            freq: 4.0,
            enabled_cores: 12,
            power_limit: 170.0,
            core_dynamic_power: 10.0,
            core_leakage_power: 3.0,
        };
        b.iter(|| pfly::evaluate(&offering, &chips));
    });
    g.bench_function("chopstix_extract", |b| {
        let w = specint_like()[0].workload(23);
        b.iter(|| p10_workloads::chopstix::extract(&w, 20_000, 10));
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
