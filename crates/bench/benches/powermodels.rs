//! Counter-model benches: regression fits, feature selection, and the
//! Fig. 11/15 sweeps on a pre-built dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use p10_bench::QUICK_OPS;
use p10_core::powerstudies::{build_dataset, run_fig11, run_fig15a, Target};
use p10_powermodel::{fit, FitOptions};
use p10_uarch::CoreConfig;
use p10_workloads::specint_like;

fn bench_powermodels(c: &mut Criterion) {
    let suite = specint_like();
    let data = build_dataset(
        &CoreConfig::power10(),
        &suite[7..10],
        &[1],
        QUICK_OPS,
        512,
        Target::ActivePower,
    );
    let mut g = c.benchmark_group("powermodels");
    g.sample_size(10);
    g.bench_function("single_fit_8_features", |b| {
        b.iter(|| fit(&data, &[0, 1, 2, 3, 4, 5, 6, 7], FitOptions::default()));
    });
    g.bench_function("fig11_sweep", |b| {
        b.iter(|| run_fig11(&data, 6));
    });
    g.bench_function("fig15a_proxy_selection", |b| {
        b.iter(|| run_fig15a(&data, 8));
    });
    g.finish();
}

criterion_group!(benches, bench_powermodels);
criterion_main!(benches);
