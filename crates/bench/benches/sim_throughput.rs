//! `sim-throughput`: raw core-model scheduling throughput, reported as
//! simulated Mcycles/s and simulated Mops/s for an ALU-bound, a
//! cache-miss-bound, and an SMT4 workload, under both the `Polled`
//! (reference) and `EventDriven` schedulers.
//!
//! Each scenario also runs in the two *observed* modes — full latch
//! bookkeeping (`rtlsim-detailed`) and windowed counter extraction
//! (`apex-windowed`) — so the cost of riding the span-aware observer
//! stream is tracked alongside the bare scheduler numbers.
//!
//! Trace acquisition is timed separately from simulation: each scenario
//! reports the cold synthesis wall (first functional execution of the
//! workload) next to the warm wall (every later acquisition, served
//! zero-copy from the process-wide trace arena), and the per-row `wall s`
//! column is pure simulation time over pre-acquired `TraceView`s.
//!
//! Sampled execution gets its own section: each of the PR 7 workloads
//! runs exact, SimPoint-sampled, and learned-fast-forward, reporting
//! wall-clock speedup next to the measured CPI error and the bound the
//! sampled run printed for itself.
//!
//! Besides the human-readable table on stdout, the bench writes
//! `BENCH_pipeline.json` (override the path with `P10SIM_BENCH_OUT`) so
//! the simulator's performance trajectory is tracked across PRs — schema
//! `p10sim-bench-pipeline/v4` (v3 plus the `sampling` section).
//!
//! Run with `cargo bench -p p10-bench --bench sim_throughput`.

use p10_isa::{Machine, ProgramBuilder, Reg, TraceView};
use p10_uarch::{Core, CoreConfig, Scheduler, SimResult, SmtMode};
use p10_workloads::Workload;
use serde::Serialize;
use std::time::Instant;

const MAX_CYCLES: u64 = 100_000_000;
const MAX_TRACE_OPS: u64 = 50_000_000;
const SAMPLES: usize = 5;

/// Independent adds in a counted loop: issue-width bound, almost no
/// stall cycles — the event-driven scheduler's worst case.
fn alu_bound(iters: i64) -> Workload {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(4), iters);
    b.mtctr(Reg::gpr(4));
    let top = b.bind_label();
    for k in 0..8u16 {
        let r = 5 + (k % 20);
        b.addi(Reg::gpr(r), Reg::gpr(r), 1);
    }
    b.bdnz(top);
    Workload::new(
        "bench_alu_bound".to_owned(),
        b.build(),
        Machine::new(),
        Vec::new(),
    )
}

/// A dependent page-stride load chain: the next address depends on the
/// loaded value (which is zero, so the walk stays a plain stride), so
/// every iteration serializes behind a memory miss — nearly every cycle
/// is idle, the fast-forward best case.
fn cache_miss_bound(iters: i64, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x20_0000 + (seed * 0x40_0000) as i64);
    b.li(Reg::gpr(4), iters);
    b.mtctr(Reg::gpr(4));
    let top = b.bind_label();
    b.ld(Reg::gpr(2), Reg::gpr(1), 0);
    b.add(Reg::gpr(1), Reg::gpr(1), Reg::gpr(2)); // address <- loaded 0
    b.addi(Reg::gpr(1), Reg::gpr(1), 4096); // new page/line every iter
    b.bdnz(top);
    Workload::new(
        format!("bench_chase_{iters}_{seed}"),
        b.build(),
        Machine::new(),
        Vec::new(),
    )
}

struct Scenario {
    name: &'static str,
    cfg: CoreConfig,
    workloads: Vec<Workload>,
}

fn scenarios() -> Vec<Scenario> {
    let p10 = CoreConfig::power10;
    let mut no_prefetch = p10();
    no_prefetch.prefetch_streams = 0;
    let mut smt4 = p10();
    smt4.smt = SmtMode::Smt4;
    vec![
        Scenario {
            name: "alu_bound",
            cfg: p10(),
            workloads: vec![alu_bound(40_000)],
        },
        Scenario {
            name: "cache_miss_bound",
            cfg: no_prefetch,
            workloads: vec![cache_miss_bound(20_000, 0)],
        },
        Scenario {
            name: "smt4_mixed",
            cfg: smt4,
            workloads: (0..4)
                .map(|t| cache_miss_bound(6_000 + 500 * t, t as u64))
                .collect(),
        },
    ]
}

#[derive(Debug, Serialize)]
struct BenchResult {
    workload: String,
    scheduler: String,
    /// What rides on the simulation: "unobserved" (bare scheduler),
    /// "rtlsim-detailed" (per-cycle latch bookkeeping over the span
    /// stream) or "apex-windowed" (windowed counter extraction).
    mode: String,
    threads: usize,
    sim_cycles: u64,
    sim_ops: u64,
    wall_s: f64,
    mcycles_per_s: f64,
    mops_per_s: f64,
}

/// Trace-acquisition timing for one scenario: cold synthesis (first
/// functional execution) versus warm zero-copy arena service.
#[derive(Debug, Serialize)]
struct SynthResult {
    workload: String,
    threads: usize,
    trace_ops: u64,
    synth_cold_s: f64,
    synth_warm_s: f64,
}

/// Sampled-execution throughput and accuracy for one workload × mode.
#[derive(Debug, Serialize)]
struct SamplingRow {
    workload: String,
    /// `exact` | `simpoints:I:K:W` | `learned:I:K:F`.
    mode: String,
    /// Ops simulated in detail (total ops for `exact`, representative +
    /// cold-prefix intervals for the sampled modes).
    sim_ops: u64,
    wall_s: f64,
    /// Effective throughput: *claimed* ops (the whole trace) over wall —
    /// this is the number the fast-forward actually buys.
    mops_per_s: f64,
    speedup_vs_exact: f64,
    cpi_rel_err: f64,
    cpi_bound_rel: f64,
    within_bound: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    samples_per_point: u64,
    synthesis: Vec<SynthResult>,
    results: Vec<BenchResult>,
    sampling: Vec<SamplingRow>,
}

/// One observation mode: how the simulation is driven and what consumes
/// the observer stream while the clock runs.
#[derive(Clone, Copy)]
enum Mode {
    /// Bare scheduler, no observer attached.
    Unobserved,
    /// Latch-accurate bookkeeping (`p10_rtlsim::run_detailed`).
    RtlsimDetailed,
    /// Windowed counter extraction (`p10_apex::run_apex`).
    ApexWindowed,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Unobserved => "unobserved",
            Mode::RtlsimDetailed => "rtlsim-detailed",
            Mode::ApexWindowed => "apex-windowed",
        }
    }

    fn run(self, cfg: &CoreConfig, traces: &[TraceView]) -> SimResult {
        match self {
            Mode::Unobserved => Core::new(cfg.clone()).run(traces.to_vec(), MAX_CYCLES),
            Mode::RtlsimDetailed => {
                use p10_rtlsim::{run_detailed, Roi, ToggleDensity};
                run_detailed(
                    cfg,
                    traces.to_vec(),
                    Roi::new(0, MAX_CYCLES),
                    ToggleDensity::default(),
                )
                .sim
            }
            Mode::ApexWindowed => p10_apex::run_apex(cfg, traces.to_vec(), 4096, MAX_CYCLES).sim,
        }
    }
}

/// Acquires the scenario's traces, timing the cold synthesis (first call
/// runs the functional model) and the warm arena path (later calls slice
/// the shared buffer). Returns the views for the simulation rows.
fn acquire_traces(s: &Scenario) -> (Vec<TraceView>, SynthResult) {
    let t0 = Instant::now();
    let traces: Vec<TraceView> = s
        .workloads
        .iter()
        .map(|w| w.trace_view_or_panic(MAX_TRACE_OPS))
        .collect();
    let cold = t0.elapsed().as_secs_f64();
    let mut warm = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let again: Vec<TraceView> = s
            .workloads
            .iter()
            .map(|w| w.trace_view_or_panic(MAX_TRACE_OPS))
            .collect();
        warm = warm.min(t0.elapsed().as_secs_f64());
        for (a, b) in traces.iter().zip(again.iter()) {
            assert_eq!(a, b, "arena must replay identical traces");
        }
    }
    let synth = SynthResult {
        workload: s.name.to_owned(),
        threads: s.workloads.len(),
        trace_ops: traces.iter().map(|t| t.len() as u64).sum(),
        synth_cold_s: cold,
        synth_warm_s: warm,
    };
    (traces, synth)
}

fn measure(s: &Scenario, traces: &[TraceView], scheduler: Scheduler, mode: Mode) -> BenchResult {
    let mut cfg = s.cfg.clone();
    cfg.scheduler = scheduler;
    let reference = mode.run(&cfg, traces); // warm-up + stats
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        let r = mode.run(&cfg, traces);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            r.activity.cycles, reference.activity.cycles,
            "non-deterministic simulation"
        );
        best = best.min(dt);
    }
    let cycles = reference.activity.cycles;
    let ops = reference.total_completed();
    BenchResult {
        workload: s.name.to_owned(),
        scheduler: format!("{scheduler:?}"),
        mode: mode.name().to_owned(),
        threads: traces.len(),
        sim_cycles: cycles,
        sim_ops: ops,
        wall_s: best,
        mcycles_per_s: cycles as f64 / best / 1e6,
        mops_per_s: ops as f64 / best / 1e6,
    }
}

/// Op budget for the sampled-execution section: large enough that the
/// SimPoint fast-forward dominates the fixed functional-warming pass,
/// small enough to keep the bench quick.
const SAMPLING_OPS: u64 = 200_000;

/// Runs the PR 7 workload slice (leela / exchange / xz analogues) exact,
/// SimPoint-sampled, and learned, reporting best-of-[`SAMPLES`] walls,
/// the measured CPI error against exact, and the bound each sampled run
/// printed for itself.
fn sampling_rows() -> Vec<SamplingRow> {
    use p10_core::sampling::{self, SamplingMode};
    use p10_core::scenario;

    let cfg = CoreConfig::power10();
    let suite = p10_workloads::specint_like();
    let interval_ops = usize::try_from(SAMPLING_OPS / 64)
        .unwrap_or(usize::MAX)
        .max(2500);
    let modes = [
        SamplingMode::SimPoints {
            interval_ops,
            k: 8,
            warmup_ops: interval_ops / 8,
        },
        SamplingMode::Learned {
            interval_ops,
            k: 8,
            max_features: 4,
        },
    ];
    let mut rows = Vec::new();
    for bench in &suite[7..10] {
        let exact = scenario::run_benchmark(&cfg, bench, 42, SAMPLING_OPS);
        let total_ops = exact.sim.activity.completed;
        let mut exact_wall = f64::INFINITY;
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            let r = scenario::run_benchmark(&cfg, bench, 42, SAMPLING_OPS);
            exact_wall = exact_wall.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                r.sim.activity.cycles, exact.sim.activity.cycles,
                "non-deterministic simulation"
            );
        }
        rows.push(SamplingRow {
            workload: bench.name.clone(),
            mode: "exact".to_owned(),
            sim_ops: total_ops,
            wall_s: exact_wall,
            mops_per_s: total_ops as f64 / exact_wall / 1e6,
            speedup_vs_exact: 1.0,
            cpi_rel_err: 0.0,
            cpi_bound_rel: 0.0,
            within_bound: true,
        });
        for mode in &modes {
            let s = sampling::run_benchmark_sampled(&cfg, bench, 42, SAMPLING_OPS, mode);
            let mut wall = f64::INFINITY;
            for _ in 0..SAMPLES {
                let t0 = Instant::now();
                let again = sampling::run_benchmark_sampled(&cfg, bench, 42, SAMPLING_OPS, mode);
                wall = wall.min(t0.elapsed().as_secs_f64());
                assert_eq!(
                    again.stats.cpi_est.to_bits(),
                    s.stats.cpi_est.to_bits(),
                    "non-deterministic sampled simulation"
                );
            }
            let cpi_err =
                (s.stats.cpi_est - exact.sim.cpi()).abs() / exact.sim.cpi().abs().max(1e-12);
            rows.push(SamplingRow {
                workload: bench.name.clone(),
                mode: mode.describe(),
                sim_ops: s.stats.simulated_ops,
                wall_s: wall,
                mops_per_s: s.stats.total_ops as f64 / wall / 1e6,
                speedup_vs_exact: exact_wall / wall,
                cpi_rel_err: cpi_err,
                cpi_bound_rel: s.stats.cpi_bound_rel,
                within_bound: cpi_err <= s.stats.cpi_bound_rel,
            });
        }
    }
    rows
}

fn main() {
    let mut results = Vec::new();
    let mut synthesis = Vec::new();
    println!(
        "{:<18} {:<12} {:<16} {:>12} {:>10} {:>12} {:>10}",
        "workload", "scheduler", "mode", "sim cycles", "wall s", "Mcycles/s", "Mops/s"
    );
    let print_row = |r: &BenchResult| {
        println!(
            "{:<18} {:<12} {:<16} {:>12} {:>10.4} {:>12.2} {:>10.2}",
            r.workload, r.scheduler, r.mode, r.sim_cycles, r.wall_s, r.mcycles_per_s, r.mops_per_s
        );
    };
    for s in scenarios() {
        let (traces, synth) = acquire_traces(&s);
        println!(
            "{:<18} synth cold {:.4}s  warm {:.6}s  ({} trace ops)",
            s.name, synth.synth_cold_s, synth.synth_warm_s, synth.trace_ops
        );
        synthesis.push(synth);
        let mut per_sched = Vec::new();
        for sched in [Scheduler::Polled, Scheduler::EventDriven] {
            let r = measure(&s, &traces, sched, Mode::Unobserved);
            print_row(&r);
            per_sched.push(r);
        }
        let speedup = per_sched[0].wall_s / per_sched[1].wall_s;
        println!("{:<18} event-driven speedup: {speedup:.2}x", s.name);
        results.extend(per_sched);
        // Observed modes ride the event-driven span stream; comparing
        // their rows against the unobserved EventDriven row above shows
        // the cost of observation itself.
        for mode in [Mode::RtlsimDetailed, Mode::ApexWindowed] {
            let r = measure(&s, &traces, Scheduler::EventDriven, mode);
            print_row(&r);
            results.push(r);
        }
    }

    println!();
    println!("sampled execution ({SAMPLING_OPS} ops/workload, best of {SAMPLES})");
    println!(
        "{:<16} {:<22} {:>11} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "workload", "mode", "detail ops", "wall s", "Mops/s", "speedup", "cpi err", "bound"
    );
    let sampling = sampling_rows();
    for r in &sampling {
        println!(
            "{:<16} {:<22} {:>11} {:>9.4} {:>9.2} {:>7.1}x {:>8.1}% {:>7.1}% {}",
            r.workload,
            r.mode,
            r.sim_ops,
            r.wall_s,
            r.mops_per_s,
            r.speedup_vs_exact,
            r.cpi_rel_err * 100.0,
            r.cpi_bound_rel * 100.0,
            if r.within_bound { "OK" } else { "VIOLATED" }
        );
    }

    let report = BenchReport {
        schema: "p10sim-bench-pipeline/v4".to_owned(),
        samples_per_point: SAMPLES as u64,
        synthesis,
        results,
        sampling,
    };
    let out =
        std::env::var("P10SIM_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_owned());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write bench report");
    println!("wrote {out}");
}
