//! Fig. 5 bench: GEMM kernel replay on the cycle model (the workload the
//! paper measures over 5K-cycle windows).

use criterion::{criterion_group, criterion_main, Criterion};
use p10_bench::QUICK_OPS;
use p10_core::scenario::run_traces;
use p10_kernels::gemm::{dgemm_mma, dgemm_vsu, int8gemm_mma, sgemm_mma};
use p10_uarch::CoreConfig;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_gemm");
    g.sample_size(10);
    let p9 = CoreConfig::power9();
    let p10 = CoreConfig::power10();
    let cases = [
        ("p9_dgemm_vsu", &p9, dgemm_vsu(1 << 40)),
        ("p10_dgemm_vsu", &p10, dgemm_vsu(1 << 40)),
        ("p10_dgemm_mma", &p10, dgemm_mma(1 << 40)),
        ("p10_sgemm_mma", &p10, sgemm_mma(1 << 40)),
        ("p10_int8_mma", &p10, int8gemm_mma(1 << 40)),
    ];
    for (name, cfg, kernel) in cases {
        let trace = kernel.trace_or_panic(QUICK_OPS);
        g.bench_function(name, |b| {
            b.iter(|| run_traces(cfg, &kernel.name, vec![trace.clone()]));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
