//! Core-model simulation throughput: dynamic instructions simulated per
//! second on POWER9 and POWER10 configurations, ST and SMT4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use p10_bench::QUICK_OPS;
use p10_uarch::{Core, CoreConfig, Scheduler, SmtMode};
use p10_workloads::specint_like;

fn bench_simulator(c: &mut Criterion) {
    let bench = &specint_like()[8]; // exchangeish: compact and fast
    let trace = bench.workload(1).trace_or_panic(QUICK_OPS);
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(QUICK_OPS));
    for scheduler in [Scheduler::Polled, Scheduler::EventDriven] {
        for mut cfg in [CoreConfig::power9(), CoreConfig::power10()] {
            cfg.scheduler = scheduler;
            g.bench_function(format!("st/{}/{scheduler:?}", cfg.name), |b| {
                b.iter(|| Core::new(cfg.clone()).run(vec![trace.clone()], 10_000_000));
            });
        }
    }
    let mut smt = CoreConfig::power10();
    smt.smt = SmtMode::Smt4;
    g.throughput(Throughput::Elements(QUICK_OPS * 4));
    g.bench_function("smt4/POWER10", |b| {
        b.iter(|| {
            Core::new(smt.clone()).run(
                vec![trace.clone(), trace.clone(), trace.clone(), trace.clone()],
                10_000_000,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
