//! Greedy forward feature selection and input-count sweeps.

use crate::dataset::Dataset;
use crate::regress::{fit, FitCache, FitOptions, LinearModel};
use serde::{Deserialize, Serialize};

/// One point of an accuracy-vs-#inputs curve (Figs. 11 and 15a).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of inputs used.
    pub inputs: usize,
    /// Held-out mean absolute percentage error.
    pub test_error_pct: f64,
    /// Training error.
    pub train_error_pct: f64,
    /// The model at this point.
    pub model: LinearModel,
}

/// Greedily selects up to `max_features` features minimizing held-out
/// error; returns the selection order.
///
/// This is the "systematic selection" replacing designer intuition in
/// the paper's proxy-counter methodology.
#[must_use]
pub fn forward_select(data: &Dataset, max_features: usize, opts: FitOptions) -> Vec<usize> {
    let (train, test) = data.split_every(5);
    // Each selection step refits every remaining candidate on the same
    // training rows; the cache turns those from O(rows·k²) into O(k³)
    // solves with bit-identical results.
    let cache = FitCache::new(&train);
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_err = f64::INFINITY;
    while chosen.len() < max_features.min(data.width()) {
        let mut best_candidate: Option<(usize, f64)> = None;
        for f in 0..data.width() {
            if chosen.contains(&f) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(f);
            let Some(m) = cache.fit(&trial, opts) else {
                continue;
            };
            let err = m.mean_abs_pct_error(&test);
            if best_candidate.is_none_or(|(_, e)| err < e) {
                best_candidate = Some((f, err));
            }
        }
        let Some((f, err)) = best_candidate else {
            break;
        };
        // Keep adding even on tiny regressions (the sweep wants the
        // whole curve), but stop if error explodes (numerical trouble).
        if err > best_err * 4.0 && chosen.len() >= 2 {
            break;
        }
        best_err = best_err.min(err);
        chosen.push(f);
    }
    chosen
}

/// Produces the accuracy-vs-#inputs curve for `1..=max_features` using
/// the forward-selection order.
#[must_use]
pub fn input_sweep(data: &Dataset, max_features: usize, opts: FitOptions) -> Vec<SweepPoint> {
    let order = forward_select(data, max_features, opts);
    let (train, test) = data.split_every(5);
    let cache = FitCache::new(&train);
    let mut out = Vec::new();
    for k in 1..=order.len() {
        let subset = &order[..k];
        let Some(m) = cache.fit(subset, opts) else {
            continue;
        };
        out.push(SweepPoint {
            inputs: k,
            test_error_pct: m.mean_abs_pct_error(&test),
            train_error_pct: m.mean_abs_pct_error(&train),
            model: m,
        });
    }
    out
}

/// A forward-selected model together with its leave-one-out
/// cross-validated error — what a learned fast-forward reports as its
/// expected per-interval prediction accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvModel {
    /// The model fitted on every sample with the forward-selected
    /// feature order.
    pub model: LinearModel,
    /// Leave-one-out mean absolute percentage error (relative to the
    /// mean target, like [`LinearModel::mean_abs_pct_error`]).
    pub cv_error_pct: f64,
}

/// Forward-selects up to `max_features` on the full dataset, then scores
/// the selection by leave-one-out cross-validation: for each sample, the
/// chosen feature set is refitted on the remaining samples (same Gram
/// cache, one row down-dated per fold is not needed — folds are small
/// enough to rebuild) and used to predict the held-out sample.
///
/// Returns `None` for datasets with fewer than 3 samples (no meaningful
/// fold structure) or when no fit converges.
#[must_use]
pub fn forward_select_loo(
    data: &Dataset,
    max_features: usize,
    opts: FitOptions,
) -> Option<CvModel> {
    if data.len() < 3 {
        return None;
    }
    let order = forward_select_full(data, max_features, opts);
    let model = fit(data, &order, opts)?;
    let scale = data.target_mean().abs().max(1e-12);
    let mut abs_err_sum = 0.0;
    for held in 0..data.len() {
        let mut fold = Dataset::new(data.feature_names.clone());
        for (i, (row, &t)) in data.rows.iter().zip(data.targets.iter()).enumerate() {
            if i != held {
                fold.push(row.clone(), t);
            }
        }
        let m = fit(&fold, &order, opts)?;
        abs_err_sum += (m.predict(&data.rows[held]) - data.targets[held]).abs();
    }
    Some(CvModel {
        model,
        cv_error_pct: abs_err_sum / data.len() as f64 / scale * 100.0,
    })
}

/// [`forward_select`] without the held-out split: selects on training
/// error over the whole dataset. Used when the dataset is too small to
/// spare a test partition (the caller cross-validates instead).
fn forward_select_full(data: &Dataset, max_features: usize, opts: FitOptions) -> Vec<usize> {
    let cache = FitCache::new(data);
    let mut chosen: Vec<usize> = Vec::new();
    let mut best_err = f64::INFINITY;
    while chosen.len() < max_features.min(data.width()) {
        let mut best_candidate: Option<(usize, f64)> = None;
        for f in 0..data.width() {
            if chosen.contains(&f) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.push(f);
            let Some(m) = cache.fit(&trial, opts) else {
                continue;
            };
            let err = m.mean_abs_pct_error(data);
            if best_candidate.is_none_or(|(_, e)| err < e) {
                best_candidate = Some((f, err));
            }
        }
        let Some((f, err)) = best_candidate else {
            break;
        };
        if err > best_err * 4.0 && chosen.len() >= 2 {
            break;
        }
        best_err = best_err.min(err);
        chosen.push(f);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dataset where features are progressively weaker predictors.
    fn layered(n: usize) -> Dataset {
        let mut d = Dataset::new(
            ["big", "mid", "small", "junk1", "junk2"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
        );
        for i in 0..n {
            let h = |k: u64| {
                ((i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_mul(k)
                    >> 40) as f64
                    / 1e7
            };
            let big = h(3);
            let mid = h(5);
            let small = h(7);
            let target = 10.0 * big + 3.0 * mid + 1.0 * small + 0.5;
            d.push(vec![big, mid, small, h(11), h(13)], target);
        }
        d
    }

    #[test]
    fn forward_selection_picks_strongest_first() {
        let d = layered(400);
        let order = forward_select(&d, 3, FitOptions::default());
        assert_eq!(order[0], 0, "'big' must be picked first, got {order:?}");
        assert!(order.contains(&1));
    }

    #[test]
    fn error_decreases_with_more_inputs() {
        let d = layered(400);
        let sweep = input_sweep(&d, 3, FitOptions::default());
        assert_eq!(sweep.len(), 3);
        assert!(
            sweep[0].test_error_pct > sweep[2].test_error_pct,
            "1-input {} must exceed 3-input {}",
            sweep[0].test_error_pct,
            sweep[2].test_error_pct
        );
        // Full model recovers the generating process almost exactly.
        assert!(sweep[2].test_error_pct < 1.0);
    }

    #[test]
    fn sweep_respects_max_features() {
        let d = layered(100);
        let sweep = input_sweep(&d, 2, FitOptions::default());
        assert!(sweep.len() <= 2);
        assert!(sweep.iter().all(|p| p.inputs <= 2));
    }

    #[test]
    fn models_are_interpretable_by_name() {
        let d = layered(200);
        let sweep = input_sweep(&d, 1, FitOptions::default());
        assert_eq!(sweep[0].model.feature_names, vec!["big".to_owned()]);
    }

    #[test]
    fn loo_cross_validation_scores_a_learnable_target() {
        let d = layered(40);
        let cv = forward_select_loo(&d, 3, FitOptions::default()).expect("fits");
        // The target is exactly linear in the first three features, so
        // held-out prediction must recover it almost perfectly even from
        // 39-sample folds.
        assert!(cv.cv_error_pct < 1.0, "cv error {}", cv.cv_error_pct);
        assert_eq!(cv.model.feature_names[0], "big");
        // And the reported model predicts the training rows it saw.
        assert!(cv.model.mean_abs_pct_error(&d) < 1.0);
    }

    #[test]
    fn loo_needs_at_least_three_samples() {
        let mut d = Dataset::new(vec!["x".into()]);
        d.push(vec![1.0], 1.0);
        d.push(vec![2.0], 2.0);
        assert!(forward_select_loo(&d, 1, FitOptions::default()).is_none());
    }
}
