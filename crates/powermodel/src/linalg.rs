//! Minimal dense linear algebra: normal equations with Gaussian
//! elimination (partial pivoting) and a ridge term for stability.

/// Solves `(XᵀX + ridge·I) β = Xᵀy` for `β`.
///
/// `x` is row-major with `n_features` columns. Returns `None` if the
/// system is singular beyond what the ridge term can stabilize.
#[must_use]
#[allow(clippy::needless_range_loop)] // matrix index symmetry
pub fn solve_normal_equations(x: &[Vec<f64>], y: &[f64], ridge: f64) -> Option<Vec<f64>> {
    let n = x.first().map_or(0, Vec::len);
    if n == 0 || x.len() != y.len() {
        return None;
    }
    // Build XtX and Xty.
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![0.0; n];
    for (row, &yi) in x.iter().zip(y.iter()) {
        debug_assert_eq!(row.len(), n);
        for i in 0..n {
            b[i] += row[i] * yi;
            for j in i..n {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            a[i][j] = a[j][i];
        }
        a[i][i] += ridge;
    }
    gaussian_solve(&mut a, &mut b)
}

/// In-place Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index symmetry reads clearer here
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut out = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in (col + 1)..n {
            s -= a[col][c] * out[c];
        }
        out[col] = s / a[col][col];
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_exact_linear_system() {
        // y = 2*x0 + 3*x1
        let x = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y = vec![2.0, 3.0, 5.0, 7.0];
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_of_overdetermined_noisy_system() {
        // y = 5*x with symmetric noise: slope recovered.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| 5.0 * f64::from(i) + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 5.0).abs() < 0.01, "slope {}", beta[0]);
    }

    #[test]
    fn singular_without_ridge_fails_with_ridge_succeeds() {
        // Two identical columns: singular.
        let x = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![2.0, 4.0, 6.0];
        assert!(solve_normal_equations(&x, &y, 0.0).is_none());
        let beta = solve_normal_equations(&x, &y, 1e-6).unwrap();
        // Ridge splits the weight across the duplicated columns.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(solve_normal_equations(&[], &[], 0.0).is_none());
        let x = vec![vec![]];
        let y = vec![0.0];
        assert!(solve_normal_equations(&x, &y, 0.0).is_none());
    }
}
