//! Minimal dense linear algebra: normal equations with Gaussian
//! elimination (partial pivoting) and a ridge term for stability.

/// Solves `(XᵀX + ridge·I) β = Xᵀy` for `β`.
///
/// `x` is row-major with `n_features` columns. Returns `None` if the
/// system is singular beyond what the ridge term can stabilize.
#[must_use]
#[allow(clippy::needless_range_loop)] // matrix index symmetry
pub fn solve_normal_equations(x: &[Vec<f64>], y: &[f64], ridge: f64) -> Option<Vec<f64>> {
    let n = x.first().map_or(0, Vec::len);
    if n == 0 || x.len() != y.len() {
        return None;
    }
    // Build XtX and Xty.
    let mut a = vec![vec![0.0; n]; n];
    let mut b = vec![0.0; n];
    for (row, &yi) in x.iter().zip(y.iter()) {
        debug_assert_eq!(row.len(), n);
        for i in 0..n {
            b[i] += row[i] * yi;
            for j in i..n {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            a[i][j] = a[j][i];
        }
        a[i][i] += ridge;
    }
    gaussian_solve(&mut a, &mut b)
}

/// Precomputed `XᵀX` / `Xᵀy` accumulators over a full-width feature
/// matrix extended with a trailing all-ones column, for solving subset
/// normal equations without rebuilding the design matrix per subset.
///
/// Forward selection refits the same rows hundreds of times on varying
/// feature subsets; building `XᵀX` from scratch each time is `O(rows ·
/// k²)` per candidate. Every subset entry is a plain sum over rows of
/// `row[i] * row[j]`, so the full-width sums can be accumulated once and
/// reused.
///
/// Bit-exactness: each cached entry is accumulated row by row in dataset
/// order — the identical sequence of f64 multiplies and adds
/// [`solve_normal_equations`] performs for that entry (products commute
/// exactly, and each entry's sum order is the row order either way) — so
/// [`Gram::solve`] returns the same floats as building the subset design
/// matrix directly.
pub struct Gram {
    /// Feature count; the ones column lives at index `width`.
    width: usize,
    n_rows: usize,
    /// Full mirrored `(width+1)²` matrix of column-pair dot products.
    g: Vec<Vec<f64>>,
    /// Per-column dot product with the target.
    c: Vec<f64>,
}

impl Gram {
    /// Accumulates the cache over `rows` (each of `width` features) and
    /// targets `y`.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // matrix index symmetry
    pub fn new(width: usize, rows: &[Vec<f64>], y: &[f64]) -> Gram {
        debug_assert_eq!(rows.len(), y.len(), "row/target count mismatch");
        let n = width + 1;
        let mut g = vec![vec![0.0; n]; n];
        let mut c = vec![0.0; n];
        for (row, &yi) in rows.iter().zip(y.iter()) {
            debug_assert_eq!(row.len(), width);
            for i in 0..width {
                c[i] += row[i] * yi;
                for j in i..width {
                    g[i][j] += row[i] * row[j];
                }
                // Pair with the ones column: the product is exactly row[i].
                g[i][width] += row[i];
            }
            c[width] += yi;
            g[width][width] += 1.0;
        }
        for i in 0..n {
            for j in 0..i {
                g[i][j] = g[j][i];
            }
        }
        Gram {
            width,
            n_rows: rows.len(),
            g,
            c,
        }
    }

    /// Index of the implicit all-ones (intercept) column.
    #[must_use]
    pub fn intercept_col(&self) -> usize {
        self.width
    }

    /// Solves `(XᵀX + ridge·I) β = Xᵀy` for the design matrix whose
    /// columns are `cols` (in order; [`Gram::intercept_col`] selects the
    /// ones column). Returns exactly what [`solve_normal_equations`]
    /// would on that matrix.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // diagonal ridge update
    pub fn solve(&self, cols: &[usize], ridge: f64) -> Option<Vec<f64>> {
        let n = cols.len();
        // An empty design matrix (no columns, or no rows to infer a width
        // from) is singular in the direct path; mirror that.
        if n == 0 || self.n_rows == 0 {
            return None;
        }
        let mut a: Vec<Vec<f64>> = cols
            .iter()
            .map(|&p| cols.iter().map(|&q| self.g[p][q]).collect())
            .collect();
        let mut b: Vec<f64> = cols.iter().map(|&p| self.c[p]).collect();
        for i in 0..n {
            a[i][i] += ridge;
        }
        gaussian_solve(&mut a, &mut b)
    }
}

/// In-place Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index symmetry reads clearer here
fn gaussian_solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for r in (col + 1)..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut out = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for c in (col + 1)..n {
            s -= a[col][c] * out[c];
        }
        out[col] = s / a[col][col];
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_exact_linear_system() {
        // y = 2*x0 + 3*x1
        let x = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let y = vec![2.0, 3.0, 5.0, 7.0];
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_of_overdetermined_noisy_system() {
        // y = 5*x with symmetric noise: slope recovered.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| 5.0 * f64::from(i) + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let beta = solve_normal_equations(&x, &y, 0.0).unwrap();
        assert!((beta[0] - 5.0).abs() < 0.01, "slope {}", beta[0]);
    }

    #[test]
    fn singular_without_ridge_fails_with_ridge_succeeds() {
        // Two identical columns: singular.
        let x = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let y = vec![2.0, 4.0, 6.0];
        assert!(solve_normal_equations(&x, &y, 0.0).is_none());
        let beta = solve_normal_equations(&x, &y, 1e-6).unwrap();
        // Ridge splits the weight across the duplicated columns.
        assert!((beta[0] + beta[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(solve_normal_equations(&[], &[], 0.0).is_none());
        let x = vec![vec![]];
        let y = vec![0.0];
        assert!(solve_normal_equations(&x, &y, 0.0).is_none());
    }
}
