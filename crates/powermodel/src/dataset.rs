//! Datasets of counter samples and power targets.

use serde::{Deserialize, Serialize};

/// A regression dataset: named counter features and a power target per
/// sample.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature (counter) names.
    pub feature_names: Vec<String>,
    /// Row-major feature matrix.
    pub rows: Vec<Vec<f64>>,
    /// Target (power) per row.
    pub targets: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature names.
    #[must_use]
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the feature count.
    pub fn push(&mut self, row: Vec<f64>, target: f64) {
        assert_eq!(row.len(), self.feature_names.len(), "row width mismatch");
        self.rows.push(row);
        self.targets.push(target);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    #[must_use]
    pub fn width(&self) -> usize {
        self.feature_names.len()
    }

    /// A view restricted to the given feature indices.
    #[must_use]
    pub fn project(&self, features: &[usize]) -> Dataset {
        Dataset {
            feature_names: features
                .iter()
                .map(|&i| self.feature_names[i].clone())
                .collect(),
            rows: self
                .rows
                .iter()
                .map(|r| features.iter().map(|&i| r[i]).collect())
                .collect(),
            targets: self.targets.clone(),
        }
    }

    /// Splits into (train, test) deterministically: every `k`-th sample
    /// goes to test.
    #[must_use]
    pub fn split_every(&self, k: usize) -> (Dataset, Dataset) {
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for (i, (row, &t)) in self.rows.iter().zip(self.targets.iter()).enumerate() {
            if k > 0 && i % k == k - 1 {
                test.push(row.clone(), t);
            } else {
                train.push(row.clone(), t);
            }
        }
        (train, test)
    }

    /// Mean of the targets.
    #[must_use]
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..10 {
            let f = f64::from(i);
            d.push(vec![f, 2.0 * f, 1.0], 3.0 * f);
        }
        d
    }

    #[test]
    fn push_and_dims() {
        let d = ds();
        assert_eq!(d.len(), 10);
        assert_eq!(d.width(), 3);
        assert!(!d.is_empty());
        assert!((d.target_mean() - 13.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut d = ds();
        d.push(vec![1.0], 0.0);
    }

    #[test]
    fn project_selects_columns() {
        let p = ds().project(&[2, 0]);
        assert_eq!(p.feature_names, vec!["c".to_owned(), "a".to_owned()]);
        assert_eq!(p.rows[3], vec![1.0, 3.0]);
        assert_eq!(p.targets.len(), 10);
    }

    #[test]
    fn split_every_is_deterministic_partition() {
        let (tr, te) = ds().split_every(5);
        assert_eq!(tr.len(), 8);
        assert_eq!(te.len(), 2);
        assert_eq!(te.rows[0][0], 4.0);
        assert_eq!(te.rows[1][0], 9.0);
    }
}
