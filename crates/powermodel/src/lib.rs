//! # p10-powermodel
//!
//! Counter-based power modeling, from scratch: the machinery behind the
//! paper's M1-linked power models (Fig. 11), the top-down vs bottom-up
//! comparison (Fig. 12), and the hardware power proxy (Fig. 15).
//!
//! * [`Dataset`] — samples of (performance-counter features → measured
//!   power), with named features.
//! * [`LinearModel`] / [`fit`] — least-squares regression via normal
//!   equations (ridge-stabilized Gaussian elimination), with optional
//!   non-negative-coefficient and no-intercept constraints — the same
//!   modeling-constraint space the paper's design exploration sweeps.
//! * [`forward_select`] — greedy forward feature selection: the
//!   "systematically selected" minimal input sets.
//! * [`error curves`](input_sweep) — model error as a function of the
//!   number of inputs, the x-axis of Figs. 11 and 15(a).
//!
//! The experiment drivers that generate datasets from simulation live in
//! `p10-core`; this crate is pure math and fully testable standalone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod linalg;
mod regress;
mod select;

pub use dataset::Dataset;
pub use linalg::{solve_normal_equations, Gram};
pub use regress::{fit, FitCache, FitOptions, LinearModel};
pub use select::{forward_select, forward_select_loo, input_sweep, CvModel, SweepPoint};
