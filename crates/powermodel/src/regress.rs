//! Constrained linear regression for counter-based power models.

use crate::dataset::Dataset;
use crate::linalg::{solve_normal_equations, Gram};
use serde::{Deserialize, Serialize};

/// Modeling constraints (the paper's design exploration: number of
/// inputs, coefficient ranges — all-positive or not — and intercepts —
/// with and without).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitOptions {
    /// Whether the model may include an intercept term.
    pub intercept: bool,
    /// Whether coefficients are constrained to be non-negative (a common
    /// requirement for hardware proxy implementations: counters can only
    /// add power).
    pub nonnegative: bool,
    /// Ridge stabilization.
    pub ridge: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            intercept: true,
            nonnegative: false,
            ridge: 1e-9,
        }
    }
}

/// A fitted linear power model over a subset of features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Indices of the features used (into the full dataset).
    pub features: Vec<usize>,
    /// Feature names (for interpretability — the paper stresses simple,
    /// interpretable models for designers).
    pub feature_names: Vec<String>,
    /// Coefficient per used feature.
    pub coefficients: Vec<f64>,
    /// Intercept (0 when disabled).
    pub intercept: f64,
}

impl LinearModel {
    /// Predicts the target for one full-width row.
    #[must_use]
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .features
                .iter()
                .zip(self.coefficients.iter())
                .map(|(&f, &c)| c * row[f])
                .sum::<f64>()
    }

    /// Mean absolute percentage error on a dataset (relative to the mean
    /// target, matching "% error on active power" style reporting).
    #[must_use]
    pub fn mean_abs_pct_error(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let scale = data.target_mean().abs().max(1e-12);
        let sum: f64 = data
            .rows
            .iter()
            .zip(data.targets.iter())
            .map(|(r, &t)| (self.predict(r) - t).abs())
            .sum();
        sum / data.len() as f64 / scale * 100.0
    }

    /// Mean residual (signed); near zero for an unconstrained fit with
    /// intercept (normal-equation orthogonality).
    #[must_use]
    pub fn mean_residual(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        data.rows
            .iter()
            .zip(data.targets.iter())
            .map(|(r, &t)| self.predict(r) - t)
            .sum::<f64>()
            / data.len() as f64
    }
}

/// Fits a linear model on the given feature subset of `data`.
///
/// Non-negativity is enforced by an active-set style iteration: fit,
/// drop the most negative coefficient, refit.
#[must_use]
pub fn fit(data: &Dataset, features: &[usize], opts: FitOptions) -> Option<LinearModel> {
    fit_with(data, features, opts, |active| {
        // Build design matrix.
        let x: Vec<Vec<f64>> = data
            .rows
            .iter()
            .map(|r| {
                let mut row: Vec<f64> = active.iter().map(|&f| r[f]).collect();
                if opts.intercept {
                    row.push(1.0);
                }
                row
            })
            .collect();
        solve_normal_equations(&x, &data.targets, opts.ridge)
    })
}

/// The shared active-set loop behind [`fit`] and [`FitCache::fit`].
/// `solve` returns β for the design matrix of the given active features
/// (plus the intercept column when `opts.intercept`).
fn fit_with(
    data: &Dataset,
    features: &[usize],
    opts: FitOptions,
    solve: impl Fn(&[usize]) -> Option<Vec<f64>>,
) -> Option<LinearModel> {
    let mut active: Vec<usize> = features.to_vec();
    loop {
        let n = active.len() + usize::from(opts.intercept);
        if n == 0 {
            return Some(LinearModel {
                features: Vec::new(),
                feature_names: Vec::new(),
                coefficients: Vec::new(),
                intercept: 0.0,
            });
        }
        let beta = solve(&active)?;
        let (coefs, intercept) = if opts.intercept {
            (beta[..active.len()].to_vec(), beta[active.len()])
        } else {
            (beta, 0.0)
        };
        if opts.nonnegative {
            // Drop the most negative coefficient, if any.
            if let Some((worst, _)) = coefs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c < -1e-12)
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            {
                active.remove(worst);
                continue;
            }
        }
        return Some(LinearModel {
            feature_names: active
                .iter()
                .map(|&f| data.feature_names[f].clone())
                .collect(),
            features: active,
            coefficients: coefs,
            intercept,
        });
    }
}

/// Subset-fit cache over one dataset: precomputes the full-width normal
/// equations once so each candidate fit costs `O(k³)` instead of
/// `O(rows · k²)`.
///
/// [`FitCache::fit`] returns exactly the model [`fit`] would (see
/// [`Gram`] for the bit-exactness argument) — forward selection drives
/// hundreds of subset fits through this without rebuilding `XᵀX`.
pub struct FitCache<'d> {
    data: &'d Dataset,
    gram: Gram,
}

impl<'d> FitCache<'d> {
    /// Accumulates the normal-equation cache for `data`.
    #[must_use]
    pub fn new(data: &'d Dataset) -> Self {
        FitCache {
            data,
            gram: Gram::new(data.width(), &data.rows, &data.targets),
        }
    }

    /// Like [`fit`] on the cached dataset, bit for bit.
    #[must_use]
    pub fn fit(&self, features: &[usize], opts: FitOptions) -> Option<LinearModel> {
        fit_with(self.data, features, opts, |active| {
            let mut cols: Vec<usize> = active.to_vec();
            if opts.intercept {
                cols.push(self.gram.intercept_col());
            }
            self.gram.solve(&cols, opts.ridge)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize) -> Dataset {
        // target = 4*a + 0.5*b + 10 with a small deterministic wobble
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "noise".into()]);
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = (i % 5) as f64 * 3.0;
            let noise = ((i * 2654435761) % 97) as f64 / 97.0;
            let wobble = if i % 2 == 0 { 0.05 } else { -0.05 };
            d.push(vec![a, b, noise], 4.0 * a + 0.5 * b + 10.0 + wobble);
        }
        d
    }

    #[test]
    fn recovers_coefficients() {
        let d = synth(200);
        let m = fit(&d, &[0, 1], FitOptions::default()).unwrap();
        assert!((m.coefficients[0] - 4.0).abs() < 0.01);
        assert!((m.coefficients[1] - 0.5).abs() < 0.01);
        assert!((m.intercept - 10.0).abs() < 0.1);
        assert!(m.mean_abs_pct_error(&d) < 1.0);
    }

    #[test]
    fn residuals_are_centered_with_intercept() {
        let d = synth(100);
        let m = fit(&d, &[0, 1, 2], FitOptions::default()).unwrap();
        assert!(m.mean_residual(&d).abs() < 1e-6);
    }

    #[test]
    fn no_intercept_constraint_respected() {
        let d = synth(100);
        let opts = FitOptions {
            intercept: false,
            ..FitOptions::default()
        };
        let m = fit(&d, &[0, 1], opts).unwrap();
        assert_eq!(m.intercept, 0.0);
        // Error worse than with intercept (true model has one).
        let with = fit(&d, &[0, 1], FitOptions::default()).unwrap();
        assert!(m.mean_abs_pct_error(&d) > with.mean_abs_pct_error(&d));
    }

    #[test]
    fn nonnegative_drops_negative_coefficients() {
        // target anti-correlates with feature 0.
        let mut d = Dataset::new(vec!["anti".into(), "pro".into()]);
        for i in 0..50 {
            let a = f64::from(i);
            d.push(vec![a, 2.0 * a], 100.0 - 3.0 * a + 8.0 * a);
        }
        let opts = FitOptions {
            nonnegative: true,
            ..FitOptions::default()
        };
        let m = fit(&d, &[0, 1], opts).unwrap();
        assert!(m.coefficients.iter().all(|&c| c >= -1e-12));
    }

    #[test]
    fn cached_fit_is_bit_identical_to_direct_fit() {
        let d = synth(150);
        let cache = FitCache::new(&d);
        let option_grid = [
            FitOptions::default(),
            FitOptions {
                intercept: false,
                ..FitOptions::default()
            },
            FitOptions {
                nonnegative: true,
                ..FitOptions::default()
            },
            FitOptions {
                ridge: 1e-4,
                ..FitOptions::default()
            },
        ];
        let subsets: [&[usize]; 6] = [&[], &[0], &[1, 0], &[0, 1, 2], &[2, 1], &[2]];
        for opts in option_grid {
            for subset in subsets {
                let direct = fit(&d, subset, opts);
                let cached = cache.fit(subset, opts);
                assert_eq!(
                    direct, cached,
                    "cache must reproduce fit exactly for {subset:?} / {opts:?}"
                );
            }
        }
    }

    #[test]
    fn empty_feature_set_predicts_zero_plus_intercept() {
        let d = synth(10);
        let m = fit(&d, &[], FitOptions::default()).unwrap();
        // With intercept only, the solve degenerates to the mean.
        let err = m.mean_abs_pct_error(&d);
        assert!(err.is_finite());
    }
}
