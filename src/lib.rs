//! # p10sim
//!
//! Umbrella crate for the `p10sim` workspace: a from-scratch Rust
//! reproduction of the ISCA 2021 paper *Energy Efficiency Boost in the
//! AI-Infused POWER10 Processor*.
//!
//! This crate re-exports every sub-crate under a stable module path, hosts
//! the runnable examples (`examples/`), and anchors the cross-crate
//! integration tests (`tests/`). For the actual APIs start at
//! [`core`] (scenario presets and experiment runners) and work outward.
//!
//! | module | contents |
//! |---|---|
//! | [`isa`] | POWER-like ISA, functional machine, dynamic-op traces |
//! | [`uarch`] | cycle-level OoO SMT core model, P9/P10 presets |
//! | [`power`] | component-level (Einspower-like) power model |
//! | [`rtlsim`] | detailed latch-activity simulation + Powerminer reports |
//! | [`apex`] | accelerated power extraction, core vs chip models |
//! | [`workloads`] | SPECint-like suite, Chopstix proxies, microbenchmarks |
//! | [`trace`] | Tracepoints + Simpoint baseline |
//! | [`powermodel`] | counter-based power models and the power proxy |
//! | [`serminer`] | latch vulnerability / derating analysis |
//! | [`powermgmt`] | WOF, PFLY/CLY, throttling, droop, MMA power gating |
//! | [`pipedepth`] | optimal pipeline-depth (FO4) study |
//! | [`kernels`] | GEMM kernels (VSU/MMA) and ResNet-50 / BERT-Large models |
//! | [`core`] | top-level scenarios, experiment runners, figure data |
//! | [`obs`] | structured tracing, metrics, and run summaries |

pub use p10_apex as apex;
pub use p10_core as core;
pub use p10_isa as isa;
pub use p10_kernels as kernels;
pub use p10_obs as obs;
pub use p10_pipedepth as pipedepth;
pub use p10_power as power;
pub use p10_powermgmt as powermgmt;
pub use p10_powermodel as powermodel;
pub use p10_rtlsim as rtlsim;
pub use p10_serminer as serminer;
pub use p10_trace as trace;
pub use p10_uarch as uarch;
pub use p10_workloads as workloads;
