//! MMA numerical correctness against scalar references, at integration
//! scale (the unit tests cover small cases; these run real kernel
//! shapes) — plus the VSU/MMA equivalence that Fig. 5 relies on.

use p10sim::isa::{Inst, Machine, ProgramBuilder, Reg};
use p10sim::kernels::gemm::{dgemm_mma_finite, dgemm_reference};

#[test]
fn finite_dgemm_matches_reference_for_many_k() {
    for k_steps in [1i64, 7, 64, 250] {
        let c_base = 0x0300_0000u64;
        let w = dgemm_mma_finite(k_steps, c_base);
        let mut m = w.machine.clone();
        m.run(&w.program, 10_000_000).expect("kernel runs");
        let expect = dgemm_reference(k_steps as usize);
        for r_blk in 0..2u64 {
            for c_blk in 0..4u64 {
                let acc = 4 * r_blk + c_blk;
                for row in 0..4u64 {
                    for col in 0..2u64 {
                        let addr = c_base + acc * 64 + row * 16 + col * 8;
                        let got = m.mem.read_f64(addr);
                        let want = expect[(4 * r_blk + row) as usize][(2 * c_blk + col) as usize];
                        let tol = 1e-9 * want.abs().max(1.0);
                        assert!(
                            (got - want).abs() < tol,
                            "k={k_steps} C[{}][{}]: got {got}, want {want}",
                            4 * r_blk + row,
                            2 * c_blk + col
                        );
                    }
                }
            }
        }
    }
}

/// An MMA rank-1 sequence must equal the same math done with scalar VSX
/// FMAs — the two code styles of Fig. 5 compute identical results.
#[test]
fn mma_equals_vsx_for_rank_updates() {
    let a_vals = [1.25f64, -2.5, 3.75, 0.5];
    let b_vals = [2.0f64, -1.5];
    let steps = 9;

    // MMA version.
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x8000);
    b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
    b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
    b.lxv(Reg::vsr(36), Reg::gpr(1), 32);
    b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
    for _ in 0..steps {
        b.push(Inst::Xvf64gerpp {
            at: Reg::acc(0),
            xa: Reg::vsr(34),
            xb: Reg::vsr(36),
        });
    }
    let p = b.build();
    let mut m = Machine::new();
    for (i, v) in a_vals.iter().enumerate() {
        m.mem.write_f64(0x8000 + 8 * i as u64, *v);
    }
    m.mem.write_f64(0x8020, b_vals[0]);
    m.mem.write_f64(0x8028, b_vals[1]);
    m.run(&p, 1_000).unwrap();
    let grid = m.acc(0).as_f64_grid();

    // Scalar reference with FMA semantics.
    for (i, &av) in a_vals.iter().enumerate() {
        for (j, &bv) in b_vals.iter().enumerate() {
            let mut acc = 0.0f64;
            for _ in 0..steps {
                acc = av.mul_add(bv, acc);
            }
            assert!(
                (grid[i][j] - acc).abs() < 1e-12,
                "grid[{i}][{j}] = {}, reference {acc}",
                grid[i][j]
            );
        }
    }
}

/// The mixed-precision property BF16 GEMMs rely on: the accumulator is
/// f32, so summing many terms that are individually below bf16's
/// resolution still makes progress — a pure-bf16 accumulator would
/// stagnate once the running sum grew past `increment × 2^8`.
#[test]
fn bf16_mma_accumulates_in_f32_not_bf16() {
    use p10sim::isa::{bf16_to_f32, f32_to_bf16};

    let steps = 4_096;
    let increment = 0.125f32; // exact in bf16

    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x8000);
    b.lxv(Reg::vsr(34), Reg::gpr(1), 0);
    b.lxv(Reg::vsr(35), Reg::gpr(1), 16);
    b.push(Inst::Xxsetaccz { at: Reg::acc(0) });
    b.li(Reg::gpr(30), steps);
    b.mtctr(Reg::gpr(30));
    let top = b.bind_label();
    b.push(Inst::Xvbf16ger2pp {
        at: Reg::acc(0),
        xa: Reg::vsr(34),
        xb: Reg::vsr(35),
    });
    b.bdnz(top);
    let p = b.build();

    let mut m = Machine::new();
    // a = all `increment`, b = all 1.0: each ger adds 2*increment = 0.25
    // to every accumulator element.
    for i in 0..8u64 {
        m.mem
            .write_bytes(0x8000 + 2 * i, &f32_to_bf16(increment).to_le_bytes());
        m.mem
            .write_bytes(0x8010 + 2 * i, &f32_to_bf16(1.0).to_le_bytes());
    }
    m.run(&p, 100_000).expect("loop runs");
    let got = m.acc(0).as_f32_grid()[0][0];
    let want = steps as f32 * 2.0 * increment; // 2048.0 exactly in f32
    assert_eq!(got, want, "f32 accumulation must be exact here");

    // Demonstrate the contrast: folding the sum through bf16 after every
    // step stagnates far below the true value (0.25 < ulp_bf16(1024)).
    let mut narrow = 0.0f32;
    for _ in 0..steps {
        narrow = bf16_to_f32(f32_to_bf16(narrow + 2.0 * increment));
    }
    assert!(
        narrow < want / 2.0,
        "bf16-width accumulation should stagnate: {narrow} vs {want}"
    );
}

/// INT8 accumulators saturate nowhere in our range and match i32 math.
#[test]
fn int8_rank4_accumulation_is_exact() {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x8000);
    b.lxv(Reg::vsr(40), Reg::gpr(1), 0);
    b.lxv(Reg::vsr(41), Reg::gpr(1), 16);
    b.push(Inst::Xxsetaccz { at: Reg::acc(3) });
    for _ in 0..100 {
        b.push(Inst::Xvi8ger4pp {
            at: Reg::acc(3),
            xa: Reg::vsr(40),
            xb: Reg::vsr(41),
        });
    }
    let p = b.build();
    let mut m = Machine::new();
    let av: [i8; 16] = [7, -3, 2, 9, -8, 4, 1, -1, 5, 5, -5, -5, 127, -128, 0, 3];
    let bv: [i8; 16] = [1, 2, 3, 4, -4, -3, -2, -1, 9, 0, 9, 0, -7, 7, -7, 7];
    for i in 0..16 {
        m.mem.write_u8(0x8000 + i as u64, av[i] as u8);
        m.mem.write_u8(0x8010 + i as u64, bv[i] as u8);
    }
    m.run(&p, 10_000).unwrap();
    let g = m.acc(3).as_i32_grid();
    for i in 0..4 {
        for j in 0..4 {
            let mut dot = 0i32;
            for k in 0..4 {
                dot += i32::from(av[4 * i + k]) * i32::from(bv[4 * j + k]);
            }
            assert_eq!(g[i][j], dot * 100, "({i},{j})");
        }
    }
}
