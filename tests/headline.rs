//! End-to-end headline gates: the paper's top-line claims must hold in
//! shape whenever the whole stack is assembled.

use p10sim::core::gemm::run_fig5;
use p10sim::core::scenario::{run_suite, SuiteComparison};
use p10sim::uarch::CoreConfig;
use p10sim::workloads::specint_like;

#[test]
fn power10_efficiency_headline() {
    // Paper: ~1.3x throughput at ~0.5x power = 2.6x perf/W (core level,
    // SPECint, iso voltage/frequency). Shape bands, not third decimals.
    let suite = specint_like();
    let p9 = run_suite(&CoreConfig::power9(), &suite, 42, 15_000);
    let p10 = run_suite(&CoreConfig::power10(), &suite, 42, 15_000);
    let cmp = SuiteComparison::between(&p9, &p10);
    assert!(
        cmp.perf_ratio > 1.15 && cmp.perf_ratio < 1.7,
        "perf ratio {} outside the ~1.3x band",
        cmp.perf_ratio
    );
    assert!(
        cmp.power_ratio > 0.35 && cmp.power_ratio < 0.70,
        "power ratio {} outside the ~0.5x band",
        cmp.power_ratio
    );
    assert!(
        cmp.efficiency_ratio > 2.0 && cmp.efficiency_ratio < 3.4,
        "efficiency ratio {} outside the ~2.6x band",
        cmp.efficiency_ratio
    );
}

#[test]
fn every_benchmark_gains_perf_and_saves_power() {
    let suite = specint_like();
    let p9 = run_suite(&CoreConfig::power9(), &suite, 7, 12_000);
    let p10 = run_suite(&CoreConfig::power10(), &suite, 7, 12_000);
    for (a, b) in p9.results.iter().zip(p10.results.iter()) {
        assert!(
            b.ipc() > a.ipc(),
            "{} must not regress: P9 {} vs P10 {}",
            a.workload,
            a.ipc(),
            b.ipc()
        );
        assert!(
            b.core_power() < a.core_power(),
            "{} power must drop: P9 {} vs P10 {}",
            a.workload,
            a.core_power(),
            b.core_power()
        );
    }
}

#[test]
fn fig5_gemm_headline() {
    let f = run_fig5(25_000);
    // Orderings that define the figure.
    assert!(f.p10_mma.flops_per_cycle > f.p10_vsu.flops_per_cycle);
    assert!(f.p10_vsu.flops_per_cycle > f.p9_vsu.flops_per_cycle);
    // Both POWER10 points cost less core power than the POWER9 baseline.
    assert!(f.p10_vsu.core_power < f.p9_vsu.core_power);
    assert!(f.p10_mma.core_power < f.p9_vsu.core_power);
    // MMA utilization beats VSU utilization (87.1% vs 62.1% in the paper).
    assert!(f.p10_mma.peak_utilization > f.p10_vsu.peak_utilization);
}

#[test]
fn mma_disabled_config_behaves_like_p10_without_grid() {
    let suite = specint_like();
    let b = &suite[8];
    let with = p10sim::core::scenario::run_benchmark(&CoreConfig::power10(), b, 3, 10_000);
    let without =
        p10sim::core::scenario::run_benchmark(&CoreConfig::power10_no_mma(), b, 3, 10_000);
    // SPECint code never touches the MMA: identical performance, and the
    // gated unit costs nothing, so power matches too.
    assert!((with.ipc() - without.ipc()).abs() < 1e-9);
    assert!((with.core_power() - without.core_power()).abs() < 1e-6);
}
