//! Determinism guarantees of the parallel experiment engine: the worker
//! pool and both cache layers must be invisible in the numbers.

use p10_core::runner::{point_key, Engine, EngineConfig};
use p10_core::scenario::{self, ScenarioResult};
use p10_uarch::CoreConfig;
use p10_workloads::specint_like;

const OPS: u64 = 8_000;
const SEED: u64 = 42;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("p10sim-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn parallel_suite_matches_serial_bit_for_bit() {
    let suite = &specint_like()[6..10];
    let cfg = CoreConfig::power10();

    let serial: Vec<ScenarioResult> = suite
        .iter()
        .map(|b| scenario::run_benchmark(&cfg, b, SEED, OPS))
        .collect();
    let parallel = Engine::new(EngineConfig {
        jobs: 4,
        ..EngineConfig::default()
    })
    .run_suite(&cfg, suite, SEED, OPS);

    assert_eq!(parallel.config, cfg.name);
    let serial_json = serde_json::to_string(&serial).expect("json");
    let parallel_json = serde_json::to_string(&parallel.results).expect("json");
    assert_eq!(
        serial_json, parallel_json,
        "parallel results must be identical to the serial path, in order"
    );
}

#[test]
fn disk_cache_hit_is_byte_identical_to_cold_run() {
    let suite = specint_like();
    let bench = &suite[8];
    let cfg = CoreConfig::power10();
    let dir = scratch_dir("cache");
    let key = point_key(&cfg, bench, SEED, OPS);

    let cold_engine = Engine::new(EngineConfig {
        disk_cache: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let cold: ScenarioResult = cold_engine.cached("cold", &key, || {
        scenario::run_benchmark(&cfg, bench, SEED, OPS)
    });

    // A fresh engine has an empty memo, so this must come from disk; the
    // closure panicking proves the point was not re-simulated.
    let warm_engine = Engine::new(EngineConfig {
        disk_cache: Some(dir.clone()),
        ..EngineConfig::default()
    });
    let warm: ScenarioResult =
        warm_engine.cached("warm", &key, || panic!("cache must prevent re-simulation"));

    assert_eq!(
        serde_json::to_string(&cold).expect("json"),
        serde_json::to_string(&warm).expect("json"),
        "a cache hit must render byte-identically to the cold run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memo_hit_is_byte_identical_and_skips_work() {
    let suite = specint_like();
    let bench = &suite[9];
    let cfg = CoreConfig::power9();
    let engine = Engine::new(EngineConfig::default());

    let cold = engine.run_benchmark(&cfg, bench, SEED, OPS);
    let key = point_key(&cfg, bench, SEED, OPS);
    let warm: ScenarioResult =
        engine.cached("memo", &key, || panic!("memo must prevent re-simulation"));
    assert_eq!(
        serde_json::to_string(&cold).expect("json"),
        serde_json::to_string(&warm).expect("json")
    );
}

#[test]
fn run_suite_entrypoint_is_deterministic_across_calls() {
    // scenario::run_suite itself now routes through the engine; two calls
    // (second one memo-warm) must agree exactly.
    let suite = &specint_like()[..3];
    let cfg = CoreConfig::power10();
    let a = scenario::run_suite(&cfg, suite, SEED, OPS);
    let b = scenario::run_suite(&cfg, suite, SEED, OPS);
    assert_eq!(
        serde_json::to_string(&a).expect("json"),
        serde_json::to_string(&b).expect("json")
    );
    let names: Vec<&str> = a.results.iter().map(|r| r.workload.as_str()).collect();
    let expected: Vec<&str> = suite.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(names, expected, "suite order must be preserved");
}
