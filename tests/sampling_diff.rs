//! Differential tests: sampled execution must stay inside its own
//! printed error bound against exact simulation — on every preset and
//! workload it claims to handle, including ragged (non-divisible) op
//! budgets — and must be deterministic.
//!
//! The sampled path is a simulator-performance optimization with an
//! explicit accuracy contract (see `DESIGN.md`); a violation here means
//! the *bound* is wrong, which is worse than the estimate being wrong.

use p10sim::core::sampling::{run_benchmark_sampled, run_traces_sampled, SamplingMode};
use p10sim::core::scenario;
use p10sim::isa::{Cond, Inst, ProgramBuilder, Reg};
use p10sim::uarch::{CoreConfig, SmtMode};
use p10sim::workloads::specint_like;
use proptest::prelude::*;

fn rel_err(est: f64, truth: f64) -> f64 {
    (est - truth).abs() / truth.abs().max(1e-12)
}

/// Runs one benchmark exact and sampled, asserting the accuracy contract
/// and the coverage invariants.
fn assert_within_bound(cfg: &CoreConfig, bench_idx: usize, ops: u64, mode: &SamplingMode) {
    let suite = specint_like();
    let bench = &suite[bench_idx];
    let exact = scenario::run_benchmark(cfg, bench, 42, ops);
    let s = run_benchmark_sampled(cfg, bench, 42, ops, mode);
    let label = format!("{} @ {} [{}]", bench.name, cfg.name, mode.describe());

    // Coverage invariants: every op is either simulated or skipped, the
    // attribution partitions the estimated cycles, and the result claims
    // exactly the exact run's op count.
    assert_eq!(
        s.stats.simulated_ops + s.stats.skipped_ops,
        s.stats.total_ops,
        "op coverage must partition on {label}"
    );
    assert_eq!(
        s.result.sim.activity.completed, exact.sim.activity.completed,
        "sampled run must claim the same op count on {label}"
    );
    assert_eq!(
        s.result.sim.attribution.total(),
        s.result.sim.activity.cycles,
        "attribution must partition the cycles on {label}"
    );

    // The accuracy contract: measured error within the printed bound.
    let cpi_err = rel_err(s.stats.cpi_est, exact.sim.cpi());
    let power_err = rel_err(s.stats.power_est, exact.core_power());
    assert!(
        cpi_err <= s.stats.cpi_bound_rel,
        "CPI error {:.1}% exceeds bound {:.1}% on {label}",
        cpi_err * 100.0,
        s.stats.cpi_bound_rel * 100.0
    );
    assert!(
        power_err <= s.stats.power_bound_rel,
        "power error {:.1}% exceeds bound {:.1}% on {label}",
        power_err * 100.0,
        s.stats.power_bound_rel * 100.0
    );
}

/// The PR's workload slice (leela / exchange / xz analogues): one cache
/// warm-up heavy, one tight and predictable, one compressible-data mix.
const BENCHES: [usize; 3] = [7, 8, 9];

/// Fixed grid: both presets x the workload slice, SimPoints mode, with a
/// deliberately non-divisible op budget so the ragged tail is always
/// exercised.
#[test]
fn simpoints_stays_within_bound_on_preset_grid() {
    let mode = SamplingMode::SimPoints {
        interval_ops: 1000,
        k: 4,
        warmup_ops: 125,
    };
    for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
        for idx in BENCHES {
            assert_within_bound(&cfg, idx, 6100, &mode);
        }
    }
}

/// The learned fast-forward honors the same contract (its bound folds in
/// the cross-validated predictor error).
#[test]
fn learned_stays_within_bound_on_power10() {
    let mode = SamplingMode::Learned {
        interval_ops: 1000,
        k: 4,
        max_features: 4,
    };
    let cfg = CoreConfig::power10();
    for idx in BENCHES {
        assert_within_bound(&cfg, idx, 6100, &mode);
    }
}

/// SMT partitioning: per-thread views are sliced at the same op indices,
/// so the invariants must hold with multiple threads too.
#[test]
fn simpoints_stays_within_bound_under_smt2() {
    let mut cfg = CoreConfig::power10();
    cfg.smt = SmtMode::Smt2;
    let mode = SamplingMode::SimPoints {
        interval_ops: 1000,
        k: 4,
        warmup_ops: 125,
    };
    for idx in BENCHES {
        assert_within_bound(&cfg, idx, 6100, &mode);
    }
}

/// Same inputs, same mode -> byte-identical serialized results and stats
/// (k-means seeding, representative choice, and reconstitution are all
/// deterministic).
#[test]
fn sampling_is_deterministic_end_to_end() {
    let cfg = CoreConfig::power10();
    let suite = specint_like();
    let mode = SamplingMode::SimPoints {
        interval_ops: 1000,
        k: 4,
        warmup_ops: 125,
    };
    let a = run_benchmark_sampled(&cfg, &suite[7], 42, 6100, &mode);
    let b = run_benchmark_sampled(&cfg, &suite[7], 42, 6100, &mode);
    assert_eq!(
        serde_json::to_string(&a.result).expect("serialize"),
        serde_json::to_string(&b.result).expect("serialize")
    );
    assert_eq!(
        serde_json::to_string(&a.stats).expect("serialize"),
        serde_json::to_string(&b.stats).expect("serialize")
    );
}

/// Exact mode through the sampled entry point is the reference path:
/// identical result, trivial stats.
#[test]
fn exact_mode_is_byte_identical_to_the_reference() {
    let cfg = CoreConfig::power10();
    let suite = specint_like();
    let exact = scenario::run_benchmark(&cfg, &suite[8], 42, 6100);
    let s = run_benchmark_sampled(&cfg, &suite[8], 42, 6100, &SamplingMode::Exact);
    assert_eq!(
        serde_json::to_string(&exact).expect("serialize"),
        serde_json::to_string(&s.result).expect("serialize")
    );
    assert_eq!(s.stats.skipped_ops, 0);
    assert_eq!(s.stats.simulated_ops, s.stats.total_ops);
}

/// Property: on arbitrary small programs the sampled path never violates
/// its invariants or its bound. Programs are generated the same way as
/// the scheduler differential (loop bodies of ALU/memory/branch ops), so
/// shrinking reduces failures to a minimal body.
mod random_programs {
    use super::*;

    fn arb_body_op() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (3u16..20, 3u16..20, 3u16..20).prop_map(|(t, a, b)| Inst::Add {
                rt: Reg::gpr(t),
                ra: Reg::gpr(a),
                rb: Reg::gpr(b)
            }),
            (3u16..20, 3u16..20, -64i64..64).prop_map(|(t, a, imm)| Inst::Addi {
                rt: Reg::gpr(t),
                ra: Reg::gpr(a),
                imm
            }),
            (3u16..20, 0i64..64).prop_map(|(t, d)| Inst::Ld {
                rt: Reg::gpr(t),
                ra: Reg::gpr(1),
                disp: d * 8
            }),
            (3u16..20, 0i64..64).prop_map(|(s, d)| Inst::Std {
                rs: Reg::gpr(s),
                ra: Reg::gpr(1),
                disp: d * 8
            }),
            (3u16..20, -32i64..32).prop_map(|(a, imm)| Inst::Cmpi {
                bf: Reg::cr(0),
                ra: Reg::gpr(a),
                imm
            }),
        ]
    }

    fn trace_of(body: &[Inst], iters: i64) -> p10sim::isa::Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x20_0000);
        b.li(Reg::gpr(2), iters);
        b.mtctr(Reg::gpr(2));
        let top = b.bind_label();
        for inst in body {
            if let Inst::Cmpi { .. } = inst {
                b.push(*inst);
                let skip = b.label();
                b.bc(Cond::Eq, Reg::cr(0), skip);
                b.addi(Reg::gpr(3), Reg::gpr(3), 1);
                b.bind(skip);
            } else {
                b.push(*inst);
            }
        }
        b.bdnz(top);
        let mut m = p10sim::isa::Machine::new();
        m.run(&b.build(), 200_000)
            .expect("generated programs are valid")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sampled_runs_hold_invariants_on_random_programs(
            body in proptest::collection::vec(arb_body_op(), 1..16),
            iters in 20i64..120,
        ) {
            let trace = trace_of(&body, iters);
            let cfg = CoreConfig::power10();
            let views = vec![p10sim::isa::TraceView::from(trace)];
            let total_ops: u64 = views.iter().map(|v| v.len() as u64).sum();
            let exact = scenario::run_traces(&cfg, "random", views.clone());
            let mode = SamplingMode::SimPoints { interval_ops: 500, k: 3, warmup_ops: 50 };
            let s = run_traces_sampled(&cfg, "random", views, &mode);
            prop_assert_eq!(s.stats.total_ops, total_ops);
            prop_assert_eq!(s.stats.simulated_ops + s.stats.skipped_ops, total_ops);
            prop_assert_eq!(s.result.sim.activity.completed, total_ops);
            prop_assert_eq!(s.result.sim.attribution.total(), s.result.sim.activity.cycles);
            let cpi_err = rel_err(s.stats.cpi_est, exact.sim.cpi());
            prop_assert!(
                cpi_err <= s.stats.cpi_bound_rel,
                "CPI error {:.1}% exceeds bound {:.1}%",
                cpi_err * 100.0,
                s.stats.cpi_bound_rel * 100.0
            );
        }
    }
}
