//! Serde round-trips for the public data types: experiment artifacts are
//! JSON (the `figures --json` output); everything a downstream tool
//! consumes must survive serialize → deserialize unchanged.

use p10sim::isa::{Machine, ProgramBuilder, Reg, Trace};
use p10sim::uarch::{Activity, CoreConfig};

#[test]
fn core_config_roundtrip() {
    for cfg in [
        CoreConfig::power9(),
        CoreConfig::power10(),
        CoreConfig::power10_no_mma(),
    ] {
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: CoreConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}

#[test]
fn program_and_trace_roundtrip() {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(4), 25);
    b.mtctr(Reg::gpr(4));
    let top = b.bind_label();
    b.addi(Reg::gpr(3), Reg::gpr(3), 1);
    b.ld(Reg::gpr(5), Reg::gpr(3), 64);
    b.bdnz(top);
    let p = b.build();

    let json = serde_json::to_string(&p).expect("serialize program");
    let p2: p10sim::isa::Program = serde_json::from_str(&json).expect("deserialize program");
    assert_eq!(p.insts(), p2.insts());

    // Deserialized programs execute identically.
    let t1 = Machine::new().run(&p, 10_000).unwrap();
    let t2 = Machine::new().run(&p2, 10_000).unwrap();
    assert_eq!(t1.ops, t2.ops);

    // Traces themselves round-trip.
    let tj = serde_json::to_string(&t1).expect("serialize trace");
    let t3: Trace = serde_json::from_str(&tj).expect("deserialize trace");
    assert_eq!(t1.ops, t3.ops);
}

#[test]
fn activity_and_power_report_roundtrip() {
    let mut act = Activity {
        cycles: 1234,
        completed: 2345,
        ..Activity::default()
    };
    act.mma_flops = 999;
    let json = serde_json::to_string(&act).unwrap();
    let back: Activity = serde_json::from_str(&json).unwrap();
    assert_eq!(act, back);

    let report = p10sim::power::PowerModel::for_config(&CoreConfig::power10()).evaluate(&act);
    let rj = serde_json::to_string(&report).unwrap();
    let rb: p10sim::power::PowerReport = serde_json::from_str(&rj).unwrap();
    // JSON prints the shortest round-trippable float, which can differ in
    // the last ULP from the computed value — compare with tolerance.
    assert_eq!(report.components.len(), rb.components.len());
    for (x, y) in report.components.iter().zip(rb.components.iter()) {
        assert_eq!(x.kind, y.kind);
        assert!((x.total() - y.total()).abs() < 1e-9);
    }
    assert!((report.total() - rb.total()).abs() < 1e-9);
    assert!((report.idle_total - rb.idle_total).abs() < 1e-9);
}

#[test]
fn experiment_artifacts_roundtrip() {
    // The figure data types downstream tools consume.
    let fig2 = p10sim::pipedepth::run_fig2(&p10sim::pipedepth::DepthParams::default(), &[]);
    let j = serde_json::to_string(&fig2).unwrap();
    let back: p10sim::pipedepth::Fig2 = serde_json::from_str(&j).unwrap();
    assert_eq!(fig2.points.len(), back.points.len());
    assert_eq!(fig2.optimal_fo4(1.0), back.optimal_fo4(1.0));

    let scaling = p10sim::core::socket::SocketScaling::default();
    let sj = serde_json::to_string(&scaling).unwrap();
    let sb: p10sim::core::socket::SocketScaling = serde_json::from_str(&sj).unwrap();
    assert!((scaling.core_count_ratio - sb.core_count_ratio).abs() < 1e-12);
}
