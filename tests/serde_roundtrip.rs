//! Serde round-trips for the public data types: experiment artifacts are
//! JSON (the `figures --json` output); everything a downstream tool
//! consumes must survive serialize → deserialize unchanged.

use p10sim::isa::{Machine, ProgramBuilder, Reg, Trace};
use p10sim::uarch::{Activity, CoreConfig};

#[test]
fn core_config_roundtrip() {
    for cfg in [
        CoreConfig::power9(),
        CoreConfig::power10(),
        CoreConfig::power10_no_mma(),
    ] {
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: CoreConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}

#[test]
fn program_and_trace_roundtrip() {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(4), 25);
    b.mtctr(Reg::gpr(4));
    let top = b.bind_label();
    b.addi(Reg::gpr(3), Reg::gpr(3), 1);
    b.ld(Reg::gpr(5), Reg::gpr(3), 64);
    b.bdnz(top);
    let p = b.build();

    let json = serde_json::to_string(&p).expect("serialize program");
    let p2: p10sim::isa::Program = serde_json::from_str(&json).expect("deserialize program");
    assert_eq!(p.insts(), p2.insts());

    // Deserialized programs execute identically.
    let t1 = Machine::new().run(&p, 10_000).unwrap();
    let t2 = Machine::new().run(&p2, 10_000).unwrap();
    assert_eq!(t1.ops, t2.ops);

    // Traces themselves round-trip.
    let tj = serde_json::to_string(&t1).expect("serialize trace");
    let t3: Trace = serde_json::from_str(&tj).expect("deserialize trace");
    assert_eq!(t1.ops, t3.ops);
}

#[test]
fn activity_and_power_report_roundtrip() {
    let mut act = Activity {
        cycles: 1234,
        completed: 2345,
        ..Activity::default()
    };
    act.mma_flops = 999;
    let json = serde_json::to_string(&act).unwrap();
    let back: Activity = serde_json::from_str(&json).unwrap();
    assert_eq!(act, back);

    let report = p10sim::power::PowerModel::for_config(&CoreConfig::power10()).evaluate(&act);
    let rj = serde_json::to_string(&report).unwrap();
    let rb: p10sim::power::PowerReport = serde_json::from_str(&rj).unwrap();
    // JSON prints the shortest round-trippable float, which can differ in
    // the last ULP from the computed value — compare with tolerance.
    assert_eq!(report.components.len(), rb.components.len());
    for (x, y) in report.components.iter().zip(rb.components.iter()) {
        assert_eq!(x.kind, y.kind);
        assert!((x.total() - y.total()).abs() < 1e-9);
    }
    assert!((report.total() - rb.total()).abs() < 1e-9);
    assert!((report.idle_total - rb.idle_total).abs() < 1e-9);
}

#[test]
fn obs_trace_events_roundtrip() {
    use p10sim::obs::{EventKind, TraceEvent};
    let events = [
        TraceEvent {
            t_us: 1,
            thread: 0,
            kind: EventKind::Span {
                name: "run_suite".to_owned(),
                dur_us: 421_337,
            },
        },
        TraceEvent {
            t_us: 2,
            thread: 3,
            kind: EventKind::Count {
                name: "cache.memo_hits".to_owned(),
                delta: 7,
            },
        },
        TraceEvent {
            t_us: 3,
            thread: 1,
            kind: EventKind::Gauge {
                name: "apex.speedup".to_owned(),
                value: 17.5,
            },
        },
        TraceEvent {
            t_us: 4,
            thread: 0,
            kind: EventKind::Mark {
                name: "table1".to_owned(),
                detail: "disk hit".to_owned(),
            },
        },
    ];
    for e in &events {
        let json = serde_json::to_string(e).expect("serialize event");
        assert!(
            !json.contains('\n'),
            "trace events must serialize to one JSONL-safe line: {json}"
        );
        let back: TraceEvent = serde_json::from_str(&json).expect("deserialize event");
        assert_eq!(e, &back);
    }
}

#[test]
fn obs_summary_roundtrip() {
    use p10sim::obs::{
        CounterSummary, GaugeSummary, HistEntry, HistSummary, PhaseSummary, Summary,
    };
    let mut hist = HistSummary::default();
    for v in [0.001, 0.25, 3.0] {
        hist.record(v);
    }
    let s = Summary {
        total_wall_s: 12.5,
        phases: vec![PhaseSummary {
            name: "fig2".to_owned(),
            wall_s: 1.25,
            calls: 1,
        }],
        counters: vec![CounterSummary {
            name: "sim.runs".to_owned(),
            value: 40,
        }],
        gauges: vec![GaugeSummary {
            name: "apex.speedup".to_owned(),
            value: 9.5,
        }],
        histograms: vec![HistEntry {
            name: "engine.compute_s".to_owned(),
            hist,
        }],
    };
    let json = serde_json::to_string(&s).expect("serialize summary");
    let back: Summary = serde_json::from_str(&json).expect("deserialize summary");
    assert_eq!(s, back);
}

#[test]
fn cycle_attribution_and_profile_row_roundtrip() {
    use p10sim::core::cycleprof::ProfileRow;
    use p10sim::uarch::CycleAttribution;
    let attr = CycleAttribution {
        active: 100,
        mma_gated: 7,
        issue_limited: 13,
        memory_bound: 29,
        dispatch_stalled: 5,
        fetch_stalled: 3,
        idle: 43,
    };
    assert_eq!(attr.total(), 200);
    let json = serde_json::to_string(&attr).expect("serialize attribution");
    let back: CycleAttribution = serde_json::from_str(&json).expect("deserialize attribution");
    assert_eq!(attr, back);

    let row = ProfileRow {
        workload: "mcfish".to_owned(),
        config: "power10".to_owned(),
        cycles: 200,
        ipc: 1.375,
        attribution: attr,
    };
    let rj = serde_json::to_string(&row).expect("serialize row");
    let rb: ProfileRow = serde_json::from_str(&rj).expect("deserialize row");
    assert_eq!(row.workload, rb.workload);
    assert_eq!(row.config, rb.config);
    assert_eq!(row.cycles, rb.cycles);
    assert!((row.ipc - rb.ipc).abs() < 1e-9);
    assert_eq!(row.attribution, rb.attribution);
}

#[test]
fn cache_counts_and_speedup_report_roundtrip() {
    let counts = p10sim::core::runner::CacheCounts {
        memo_hits: 11,
        disk_hits: 4,
        computes: 9,
        disk_decode_errors: 1,
    };
    let json = serde_json::to_string(&counts).expect("serialize counts");
    let back: p10sim::core::runner::CacheCounts =
        serde_json::from_str(&json).expect("deserialize counts");
    assert_eq!(counts, back);

    let report = p10sim::apex::SpeedupReport {
        detailed_secs: 4.5,
        apex_secs: 0.5,
        speedup: 9.0,
        cycles: 123_456,
        windows: 31,
    };
    let rj = serde_json::to_string(&report).expect("serialize report");
    let rb: p10sim::apex::SpeedupReport = serde_json::from_str(&rj).expect("deserialize report");
    assert_eq!(report.cycles, rb.cycles);
    assert_eq!(report.windows, rb.windows);
    assert!((report.speedup - rb.speedup).abs() < 1e-9);
    assert!((report.detailed_secs - rb.detailed_secs).abs() < 1e-9);
    assert!((report.apex_secs - rb.apex_secs).abs() < 1e-9);
}

#[test]
fn experiment_artifacts_roundtrip() {
    // The figure data types downstream tools consume.
    let fig2 = p10sim::pipedepth::run_fig2(&p10sim::pipedepth::DepthParams::default(), &[]);
    let j = serde_json::to_string(&fig2).unwrap();
    let back: p10sim::pipedepth::Fig2 = serde_json::from_str(&j).unwrap();
    assert_eq!(fig2.points.len(), back.points.len());
    assert_eq!(fig2.optimal_fo4(1.0), back.optimal_fo4(1.0));

    let scaling = p10sim::core::socket::SocketScaling::default();
    let sj = serde_json::to_string(&scaling).unwrap();
    let sb: p10sim::core::socket::SocketScaling = serde_json::from_str(&sj).unwrap();
    assert!((scaling.core_count_ratio - sb.core_count_ratio).abs() < 1e-12);
}
