//! Property-based tests on core invariants (proptest).

use p10sim::isa::{Cond, Inst, Machine, ProgramBuilder, Reg, Trace};
use p10sim::power::PowerModel;
use p10sim::uarch::{Activity, Core, CoreConfig};
use proptest::prelude::*;

/// Strategy: a random straight-line-plus-loop program over a safe
/// register/memory window.
pub fn arb_body_op() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (3u16..20, 3u16..20, 3u16..20).prop_map(|(t, a, b)| Inst::Add {
            rt: Reg::gpr(t),
            ra: Reg::gpr(a),
            rb: Reg::gpr(b)
        }),
        (3u16..20, 3u16..20, -64i64..64).prop_map(|(t, a, imm)| Inst::Addi {
            rt: Reg::gpr(t),
            ra: Reg::gpr(a),
            imm
        }),
        (3u16..20, 3u16..20, 3u16..20).prop_map(|(t, a, b)| Inst::Xor {
            rt: Reg::gpr(t),
            ra: Reg::gpr(a),
            rb: Reg::gpr(b)
        }),
        (3u16..20, 3u16..20).prop_map(|(t, a)| Inst::Mulld {
            rt: Reg::gpr(t),
            ra: Reg::gpr(a),
            rb: Reg::gpr(a)
        }),
        (3u16..20, 0i64..64).prop_map(|(t, d)| Inst::Ld {
            rt: Reg::gpr(t),
            ra: Reg::gpr(1),
            disp: d * 8
        }),
        (3u16..20, 0i64..64).prop_map(|(s, d)| Inst::Std {
            rs: Reg::gpr(s),
            ra: Reg::gpr(1),
            disp: d * 8
        }),
        (3u16..20, -32i64..32).prop_map(|(a, imm)| Inst::Cmpi {
            bf: Reg::cr(0),
            ra: Reg::gpr(a),
            imm
        }),
    ]
}

pub fn build_program(body: &[Inst], iters: i64) -> p10sim::isa::Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::gpr(1), 0x20_0000);
    b.li(Reg::gpr(2), iters);
    b.mtctr(Reg::gpr(2));
    let top = b.bind_label();
    for inst in body {
        if let Inst::Cmpi { .. } = inst {
            // Pair each compare with a short forward branch so CR writes
            // feed real control flow.
            b.push(*inst);
            let skip = b.label();
            b.bc(Cond::Eq, Reg::cr(0), skip);
            b.addi(Reg::gpr(3), Reg::gpr(3), 1);
            b.bind(skip);
        } else {
            b.push(*inst);
        }
    }
    b.bdnz(top);
    b.build()
}

fn run_functional(program: &p10sim::isa::Program) -> (Machine, Trace) {
    let mut m = Machine::new();
    for i in 0..256u64 {
        m.mem
            .write_u64(0x20_0000 + i * 8, i.wrapping_mul(0x1234_5678));
    }
    let t = m
        .run(program, 200_000)
        .expect("generated programs are valid");
    (m, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Functional execution is deterministic.
    #[test]
    fn functional_execution_deterministic(body in proptest::collection::vec(arb_body_op(), 1..20), iters in 1i64..40) {
        let p = build_program(&body, iters);
        let (m1, t1) = run_functional(&p);
        let (m2, t2) = run_functional(&p);
        prop_assert_eq!(t1.ops.len(), t2.ops.len());
        prop_assert_eq!(t1.ops, t2.ops);
        for r in 0..32 {
            prop_assert_eq!(m1.gpr(r), m2.gpr(r));
        }
    }

    /// The pipeline retires exactly the trace it is given, on any config,
    /// and the cycle count is bounded below by ops/width.
    #[test]
    fn pipeline_completes_all_ops(body in proptest::collection::vec(arb_body_op(), 1..16), iters in 1i64..30) {
        let p = build_program(&body, iters);
        let (_, trace) = run_functional(&p);
        let n = trace.len() as u64;
        for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
            let width = u64::from(cfg.completion_width);
            let r = Core::new(cfg).run(vec![trace.clone()], 10_000_000);
            prop_assert_eq!(r.activity.completed, n);
            prop_assert!(r.activity.cycles >= n / width);
        }
    }

    /// Timing is deterministic: same trace, same config, same cycles.
    #[test]
    fn pipeline_deterministic(body in proptest::collection::vec(arb_body_op(), 1..12), iters in 1i64..20) {
        let p = build_program(&body, iters);
        let (_, trace) = run_functional(&p);
        let a = Core::new(CoreConfig::power10()).run(vec![trace.clone()], 10_000_000);
        let b = Core::new(CoreConfig::power10()).run(vec![trace], 10_000_000);
        prop_assert_eq!(a.activity, b.activity);
    }

    /// Power-model additivity and monotonicity: doubling every activity
    /// counter (at fixed cycles) never lowers dynamic power.
    #[test]
    fn power_monotone_in_activity(scale in 2u64..5) {
        let cfg = CoreConfig::power10();
        let model = PowerModel::for_config(&cfg);
        let mut base = Activity {
            cycles: 10_000,
            completed: 12_000,
            ..Activity::default()
        };
        base.fetched = 12_500;
        base.decoded = 12_500;
        base.dispatched = 12_500;
        base.issued = 12_500;
        base.alu_ops = 8_000;
        base.loads = 2_000;
        base.l1d_accesses = 2_500;
        base.regfile_reads = 20_000;
        base.regfile_writes = 9_000;
        let mut scaled = base;
        scaled.completed *= scale;
        scaled.fetched *= scale;
        scaled.decoded *= scale;
        scaled.dispatched *= scale;
        scaled.issued *= scale;
        scaled.alu_ops *= scale;
        scaled.loads *= scale;
        scaled.l1d_accesses *= scale;
        scaled.regfile_reads *= scale;
        scaled.regfile_writes *= scale;
        let p0 = model.evaluate(&base);
        let p1 = model.evaluate(&scaled);
        prop_assert!(p1.total() >= p0.total());
        prop_assert!(p1.active() >= p0.active());
    }

    /// LFSR counters recover any count below the period exactly.
    #[test]
    fn lfsr_count_roundtrip(n in 0u64..65_534) {
        use p10sim::apex::lfsr::Lfsr16;
        let start = Lfsr16::new();
        let mut c = start;
        c.tick_n(n);
        prop_assert_eq!(u64::from(c.count_since(&start)), n);
    }

    /// WOF is monotone: heavier workloads never get a higher frequency.
    #[test]
    fn wof_monotone(c1 in 0.3f64..2.0, c2 in 0.3f64..2.0) {
        use p10sim::powermgmt::wof::{solve, WofConfig};
        let cfg = WofConfig::typical();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let d_light = solve(&cfg, lo, 0.0);
        let d_heavy = solve(&cfg, hi, 0.0);
        prop_assert!(d_light.point.freq >= d_heavy.point.freq - 1e-9);
    }
}

mod cache_props {
    use p10sim::uarch::{Activity, Cache, CacheConfig, CoreConfig, MemHierarchy};
    use proptest::prelude::*;

    fn small_cache_cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 128 * 4, // 4 sets, 4 ways
            ways: 4,
            line_bytes: 128,
            latency: 1,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Immediately re-accessing an address always hits (MRU retention).
        #[test]
        fn mru_is_never_evicted_by_its_own_access(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut c = Cache::new(&small_cache_cfg());
            for a in addrs {
                c.access(a);
                prop_assert!(c.probe(a), "address {a:#x} must be resident right after access");
            }
        }

        /// A strictly larger cache (same geometry otherwise) never misses
        /// more on any access sequence (LRU inclusion property).
        #[test]
        fn bigger_cache_never_misses_more(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            // Same set count, 4x the ways: the classic LRU stack/inclusion
            // property guarantees the bigger cache never misses more.
            let small = small_cache_cfg();
            let big = CacheConfig {
                size_bytes: small.size_bytes * 4,
                ways: small.ways * 4,
                ..small
            };
            let mut cs = Cache::new(&small);
            let mut cb = Cache::new(&big);
            let mut miss_s = 0u32;
            let mut miss_b = 0u32;
            for a in addrs {
                if !cs.access(a).hit { miss_s += 1; }
                if !cb.access(a).hit { miss_b += 1; }
            }
            // Higher associativity with same sets: classic LRU inclusion.
            prop_assert!(miss_b <= miss_s, "bigger {miss_b} vs smaller {miss_s}");
        }

        /// Hierarchy invariants hold on arbitrary access streams:
        /// misses never exceed accesses at any level, and L3 traffic never
        /// exceeds L2 misses.
        #[test]
        fn hierarchy_counter_invariants(addrs in proptest::collection::vec(0u64..(1u64<<24), 1..400)) {
            let cfg = CoreConfig::power9();
            let mut h = MemHierarchy::new(&cfg);
            let mut act = Activity::default();
            for a in &addrs {
                h.access_data(*a, &mut act);
            }
            prop_assert!(act.l1d_misses <= act.l1d_accesses);
            prop_assert!(act.l2_misses <= act.l2_accesses);
            prop_assert!(act.l3_misses <= act.l3_accesses);
            prop_assert!(act.l3_accesses == act.l2_misses);
            prop_assert!(act.l2_accesses >= act.l1d_misses);
            prop_assert_eq!(act.l1d_accesses, addrs.len() as u64);
        }
    }
}

mod asm_props {
    use super::{arb_body_op, build_program};
    use p10sim::isa::asm::{assemble, disassemble};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Disassemble → assemble is the identity on instruction streams,
        /// for arbitrary generated programs (including branches/labels).
        #[test]
        fn disassemble_assemble_roundtrip(body in proptest::collection::vec(arb_body_op(), 1..24), iters in 1i64..20) {
            let p = build_program(&body, iters);
            let text = disassemble(&p);
            let p2 = assemble(&text).map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
            prop_assert_eq!(p.insts(), p2.insts());
        }
    }
}
