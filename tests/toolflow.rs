//! Cross-crate tool-flow tests: the paper's methodology pipelines
//! (Figs. 7–9) wired end to end — application → proxies → detailed
//! simulation → accelerated extraction → counter power models → hardware
//! proxy selection.

use p10sim::apex::run_apex;
use p10sim::core::powerstudies::{build_dataset, counter_features, Target};
use p10sim::powermodel::{fit, forward_select, FitOptions};
use p10sim::rtlsim::{run_detailed, Roi, ToggleDensity};
use p10sim::uarch::CoreConfig;
use p10sim::workloads::{chopstix, specint_like};

/// The full §III flow: extract proxies from an application, run them
/// through detailed RTL-style simulation, cross-check with accelerated
/// extraction, and fit a counter power model on the windows.
#[test]
fn proxy_to_power_model_pipeline() {
    let cfg = CoreConfig::power10();
    let bench = &specint_like()[9]; // xzish: concentrated
    let workload = bench.workload(23);

    // 1. Chopstix: hot-function proxies with coverage accounting.
    let proxies = chopstix::extract(&workload, 25_000, 5);
    assert!(proxies.coverage > 0.8, "coverage {}", proxies.coverage);
    let hot = &proxies.proxies[0];

    // 2. Detailed (RTLSim + Powerminer) run of the hottest proxy.
    let trace = hot.trace(8_000);
    let detailed = run_detailed(
        &cfg,
        vec![trace.clone()],
        Roi::new(500, 1_000_000),
        ToggleDensity::default(),
    );
    assert!(detailed.powerminer.clock_enable_pct > 0.0);
    assert!(detailed.powerminer.observed_ratio <= 1.0);

    // 3. APEX: same workload, batch extraction; tracked counters must
    //    agree exactly with the detailed run's totals.
    let apex = run_apex(&cfg, vec![trace], 2048, 1_000_000);
    assert_eq!(
        apex.sim.activity.completed, detailed.sim.activity.completed,
        "identical accuracy on tracked signals"
    );
    assert_eq!(
        apex.windows_total().l1d_accesses,
        apex.sim.activity.l1d_accesses
    );

    // 4. Counter power model fitted on APEX windows of suite runs.
    let data = build_dataset(
        &cfg,
        &specint_like()[7..10],
        &[1],
        10_000,
        512,
        Target::ActivePower,
    );
    let order = forward_select(&data, 6, FitOptions::default());
    let model = fit(&data, &order, FitOptions::default()).expect("fit");
    assert!(model.mean_abs_pct_error(&data) < 10.0);

    // 5. The fitted model predicts the proxy's window power sensibly.
    let (_, feats) = counter_features(&apex.windows[1].activity);
    let predicted = model.predict(&feats);
    assert!(predicted.is_finite() && predicted > 0.0);
}

/// Windowed measurement discipline: the region of interest excludes
/// warmup, exactly like the paper's per-workload measurement windows.
#[test]
fn roi_windows_are_consistent_across_modes() {
    let cfg = CoreConfig::power9();
    let trace = specint_like()[8].workload(5).trace_or_panic(10_000);
    let detailed = run_detailed(
        &cfg,
        vec![trace.clone()],
        Roi::new(1_000, 1_000_000),
        ToggleDensity::default(),
    );
    assert!(detailed.roi_activity.completed > 0);
    assert!(detailed.roi_activity.completed < detailed.sim.activity.completed);
    // Power over the ROI only.
    assert!(detailed.power.core_total() > 0.0);
}

/// The 39-component bottom-up decomposition stays in sync with the
/// top-level power across the whole flow.
#[test]
fn component_power_sums_to_total() {
    let cfg = CoreConfig::power10();
    let trace = specint_like()[7].workload(3).trace_or_panic(10_000);
    let apex = run_apex(&cfg, vec![trace], 4096, 1_000_000);
    let total = apex.power.total();
    let sum: f64 = apex.power.components.iter().map(|c| c.total()).sum();
    assert!((total - sum).abs() < 1e-9 * total.max(1.0));
    assert_eq!(apex.power.components.len(), 39);
}
