//! Differential tests: the event-driven scheduler must be observationally
//! identical to the polled reference — same `SimResult`, byte for byte,
//! on every configuration preset and workload family the repo ships.
//!
//! The event-driven path (completion calendar, wakeup lists, idle-cycle
//! fast-forward) is a pure simulator-performance optimization; any
//! divergence here is a scheduler bug, not a modeling change.

use p10sim::isa::{Cond, Inst, ProgramBuilder, Reg};
use p10sim::uarch::{Core, CoreConfig, Scheduler, SimResult, SmtMode};
use p10sim::workloads::{
    microbench::{derating_grid, generate},
    specint_like,
};
use proptest::prelude::*;

/// Runs the same traces under one scheduler setting.
fn run_with(cfg: &CoreConfig, scheduler: Scheduler, traces: &[p10sim::isa::Trace]) -> SimResult {
    let mut cfg = cfg.clone();
    cfg.scheduler = scheduler;
    Core::new(cfg).run(traces.to_vec(), 50_000_000)
}

/// Asserts both schedulers produce a byte-identical serialized result.
fn assert_schedulers_agree(cfg: &CoreConfig, traces: &[p10sim::isa::Trace], label: &str) {
    let polled = run_with(cfg, Scheduler::Polled, traces);
    let event = run_with(cfg, Scheduler::EventDriven, traces);
    let pj = serde_json::to_string(&polled).expect("serialize polled");
    let ej = serde_json::to_string(&event).expect("serialize event-driven");
    assert_eq!(
        pj, ej,
        "scheduler divergence on {label} @ {}: polled {} cycles vs event-driven {} cycles",
        cfg.name, polled.activity.cycles, event.activity.cycles
    );
}

/// Every core preset, in both plain and SMT variants.
fn presets() -> Vec<CoreConfig> {
    let mut v = vec![
        CoreConfig::power9(),
        CoreConfig::power10(),
        CoreConfig::power10_no_mma(),
    ];
    let mut smt2 = CoreConfig::power10();
    smt2.smt = SmtMode::Smt2;
    v.push(smt2);
    let mut smt4 = CoreConfig::power9();
    smt4.smt = SmtMode::Smt4;
    v.push(smt4);
    v
}

fn smt_mode(threads: u8) -> SmtMode {
    match threads {
        1 => SmtMode::St,
        2 => SmtMode::Smt2,
        _ => SmtMode::Smt4,
    }
}

/// Fixed-seed regression: every preset × every SPECint-like benchmark.
#[test]
fn schedulers_agree_on_specint_suite() {
    for cfg in presets() {
        let threads = cfg.smt.threads();
        for bench in specint_like() {
            let traces: Vec<_> = (0..threads)
                .map(|t| bench.workload(42 + t as u64).trace_or_panic(3_000))
                .collect();
            assert_schedulers_agree(&cfg, &traces, &bench.name);
        }
    }
}

/// Fixed-seed regression: every preset × every Fig. 13 derating
/// microbench (each spec runs at its intended SMT level).
#[test]
fn schedulers_agree_on_microbench_grid() {
    for base in [
        CoreConfig::power9(),
        CoreConfig::power10(),
        CoreConfig::power10_no_mma(),
    ] {
        for spec in derating_grid() {
            let mut cfg = base.clone();
            cfg.smt = smt_mode(spec.smt);
            let traces: Vec<_> = (0..spec.smt)
                .map(|t| generate(&spec, 7 + u64::from(t)).trace_or_panic(3_000))
                .collect();
            assert_schedulers_agree(&cfg, &traces, &spec.name());
        }
    }
}

/// The always-on cycle-attribution counters ride inside `SimResult`, so
/// the byte-identity assertions above already cover them implicitly; this
/// pins the stronger invariants by name on the Fig. 13 grid: the buckets
/// partition the cycle count exactly, the `active` bucket equals the
/// issue-activity counter, and the whole partition is independent of the
/// scheduler (the fast-forward path attributes skipped stretches in
/// closed form and must land on the same buckets as per-cycle stepping).
#[test]
fn cycle_attribution_is_scheduler_invariant_on_microbench_grid() {
    for base in [CoreConfig::power9(), CoreConfig::power10()] {
        for spec in derating_grid() {
            let mut cfg = base.clone();
            cfg.smt = smt_mode(spec.smt);
            let traces: Vec<_> = (0..spec.smt)
                .map(|t| generate(&spec, 7 + u64::from(t)).trace_or_panic(3_000))
                .collect();
            let polled = run_with(&cfg, Scheduler::Polled, &traces);
            let event = run_with(&cfg, Scheduler::EventDriven, &traces);
            let label = format!("{} @ {}", spec.name(), cfg.name);
            assert_eq!(
                polled.attribution, event.attribution,
                "attribution must be scheduler-invariant on {label}"
            );
            assert_eq!(
                polled.attribution.total(),
                polled.activity.cycles,
                "buckets must partition the cycles on {label}"
            );
            assert_eq!(
                polled.attribution.active, polled.activity.active_cycles,
                "active bucket must equal the activity counter on {label}"
            );
        }
    }
}

/// MMA power-gating interacts with the idle-cycle fast-forward (the
/// closed-form `mma_powered_cycles` accounting), so GEMM kernels get
/// their own regression point on every MMA-capable preset.
#[test]
fn schedulers_agree_on_mma_kernels() {
    use p10sim::kernels::gemm::{dgemm_mma, dgemm_vsu, int8gemm_mma};
    let p10 = CoreConfig::power10();
    for (name, w) in [
        ("dgemm_mma", dgemm_mma(64)),
        ("int8gemm_mma", int8gemm_mma(64)),
        ("dgemm_vsu", dgemm_vsu(64)),
    ] {
        let traces = vec![w.trace_or_panic(4_000)];
        assert_schedulers_agree(&p10, &traces, name);
    }
    // The no-MMA preset cannot execute MMA ops; cover it with the VSU
    // variant only.
    let traces = vec![dgemm_vsu(64).trace_or_panic(4_000)];
    assert_schedulers_agree(&CoreConfig::power10_no_mma(), &traces, "dgemm_vsu");
}

/// Span-aware observer that checks the delivery stream tiles the run:
/// live cycles and spans arrive contiguously, in order, and together
/// account for every simulated cycle exactly once.
struct TilingObserver {
    next_cycle: u64,
    live_cycles: u64,
    span_cycles: u64,
}

impl TilingObserver {
    fn new() -> Self {
        TilingObserver {
            next_cycle: 1,
            live_cycles: 0,
            span_cycles: 0,
        }
    }
}

impl p10sim::uarch::SpanObserver for TilingObserver {
    fn on_cycle(&mut self, cycle: u64, _act: &p10sim::uarch::Activity) {
        assert_eq!(
            cycle, self.next_cycle,
            "live cycles arrive densely, in order"
        );
        self.next_cycle += 1;
        self.live_cycles += 1;
    }

    fn on_span(&mut self, start: u64, len: u64, delta: &p10sim::uarch::Activity) {
        assert_eq!(start, self.next_cycle, "spans arrive densely, in order");
        assert!(len > 0, "empty spans are never delivered");
        assert_eq!(delta.cycles, len, "a span delta covers exactly its cycles");
        self.next_cycle += len;
        self.span_cycles += len;
    }
}

/// Observation must not perturb the simulation. Runs the same traces
/// three ways on the event-driven scheduler — unobserved, under a
/// span-aware observer, and under the per-cycle compatibility adapter —
/// and demands byte-identical `SimResult`s (activity + attribution)
/// plus a delivery stream that tiles the run.
///
/// Tests build with debug assertions enabled, so every fast-forwarded
/// span in here is additionally cross-checked inside the simulator
/// against a cycle-by-cycle replay of the skipped stretch
/// (`cross_check_spans`) — this is the wiring point for that invariant.
fn assert_observation_is_transparent(cfg: &CoreConfig, traces: &[p10sim::isa::Trace], label: &str) {
    let mut cfg = cfg.clone();
    cfg.scheduler = Scheduler::EventDriven;
    let plain = Core::new(cfg.clone()).run(traces.to_vec(), 50_000_000);
    let mut tiling = TilingObserver::new();
    let spanned = Core::new(cfg.clone()).run_spanned(traces.to_vec(), 50_000_000, &mut tiling);
    let mut per_cycle_calls = 0u64;
    let per_cycle = Core::new(cfg.clone()).run_observed(traces.to_vec(), 50_000_000, |_, _| {
        per_cycle_calls += 1;
    });

    let pj = serde_json::to_string(&plain).expect("serialize plain");
    let sj = serde_json::to_string(&spanned).expect("serialize spanned");
    let cj = serde_json::to_string(&per_cycle).expect("serialize per-cycle");
    assert_eq!(
        pj, sj,
        "span observer must not perturb the run on {label} @ {}",
        cfg.name
    );
    assert_eq!(
        pj, cj,
        "per-cycle adapter must not perturb the run on {label} @ {}",
        cfg.name
    );
    assert_eq!(
        plain.attribution, spanned.attribution,
        "attribution must be observation-invariant on {label} @ {}",
        cfg.name
    );
    assert_eq!(
        tiling.live_cycles + tiling.span_cycles,
        plain.activity.cycles,
        "span deliveries must tile the run on {label} @ {}",
        cfg.name
    );
    assert_eq!(
        per_cycle_calls, plain.activity.cycles,
        "per-cycle adapter must see every cycle on {label} @ {}",
        cfg.name
    );
}

/// Observed-vs-unobserved differential grid: every preset (P9/P10
/// families across SMT modes) × every SPECint-like benchmark.
#[test]
fn observed_runs_match_unobserved_on_specint_suite() {
    for cfg in presets() {
        let threads = cfg.smt.threads();
        for bench in specint_like() {
            let traces: Vec<_> = (0..threads)
                .map(|t| bench.workload(42 + t as u64).trace_or_panic(3_000))
                .collect();
            assert_observation_is_transparent(&cfg, &traces, &bench.name);
        }
    }
}

/// Observed-vs-unobserved differential grid: P9/P10 × every Fig. 13
/// derating microbench at its intended SMT level.
#[test]
fn observed_runs_match_unobserved_on_microbench_grid() {
    for base in [CoreConfig::power9(), CoreConfig::power10()] {
        for spec in derating_grid() {
            let mut cfg = base.clone();
            cfg.smt = smt_mode(spec.smt);
            let traces: Vec<_> = (0..spec.smt)
                .map(|t| generate(&spec, 7 + u64::from(t)).trace_or_panic(3_000))
                .collect();
            assert_observation_is_transparent(&cfg, &traces, &spec.name());
        }
    }
}

/// The latch-accurate RTL-sim analog now consumes the span stream; the
/// simulation it embeds must still be the plain, unobserved one, bit for
/// bit, on both processor generations.
#[test]
fn rtlsim_observed_sim_matches_plain_run() {
    use p10sim::rtlsim::{run_detailed, Roi, ToggleDensity};
    for cfg in [CoreConfig::power9(), CoreConfig::power10()] {
        for bench_idx in [2usize, 8] {
            let bench = &specint_like()[bench_idx];
            let trace = bench.workload(42).trace_or_panic(2_000);
            let report = run_detailed(
                &cfg,
                vec![trace.clone()],
                Roi::new(200, 50_000_000),
                ToggleDensity::random_init(),
            );
            let plain = Core::new(cfg.clone()).run(vec![trace], 50_000_000);
            assert_eq!(
                serde_json::to_string(&report.sim).expect("serialize observed sim"),
                serde_json::to_string(&plain).expect("serialize plain sim"),
                "RTL-sim observation must not perturb the simulation for {} @ {}",
                bench.name,
                cfg.name
            );
        }
    }
}

/// The observed (per-cycle callback) entry point must also agree: the
/// fast-forward path replays skipped cycles one at a time for the
/// observer, and the observer must see every cycle exactly once with
/// monotonically consistent counters.
#[test]
fn observed_run_sees_every_cycle_under_both_schedulers() {
    let bench = &specint_like()[2]; // mcf-like: memory-bound, long idles
    let trace = bench.workload(42).trace_or_panic(2_000);
    let mut logs: Vec<Vec<(u64, u64)>> = Vec::new();
    for scheduler in [Scheduler::Polled, Scheduler::EventDriven] {
        let mut cfg = CoreConfig::power10();
        cfg.scheduler = scheduler;
        let mut log = Vec::new();
        let r = Core::new(cfg).run_observed(vec![trace.clone()], 50_000_000, |cycle, act| {
            log.push((cycle, act.completed));
        });
        assert_eq!(
            log.len() as u64,
            r.activity.cycles,
            "one callback per cycle"
        );
        for (i, &(cycle, _)) in log.iter().enumerate() {
            assert_eq!(cycle, i as u64 + 1, "cycles arrive densely, in order");
        }
        logs.push(log);
    }
    assert_eq!(
        logs[0], logs[1],
        "identical per-cycle completion trajectory"
    );
}

/// The latch-accurate RTL-sim analog consumes the per-cycle observer
/// stream; its whole report must be unchanged by the scheduler knob.
#[test]
fn rtlsim_report_is_scheduler_invariant() {
    use p10sim::rtlsim::{run_detailed, Roi, ToggleDensity};
    let bench = &specint_like()[8]; // exchangeish: compact and fast
    let trace = bench.workload(42).trace_or_panic(2_000);
    let mut reports = Vec::new();
    for scheduler in [Scheduler::Polled, Scheduler::EventDriven] {
        let mut cfg = CoreConfig::power10();
        cfg.scheduler = scheduler;
        let report = run_detailed(
            &cfg,
            vec![trace.clone()],
            Roi::new(200, 50_000_000),
            ToggleDensity::random_init(),
        );
        reports.push(serde_json::to_string(&report).expect("serialize report"));
    }
    assert_eq!(
        reports[0], reports[1],
        "RTL-sim report must not depend on scheduler"
    );
}

/// Random-program property: for arbitrary short loopy programs the two
/// schedulers serialize to identical bytes. Complements the fixed-seed
/// regressions above with shrinking on failure.
mod random_programs {
    use super::*;

    fn arb_body_op() -> impl Strategy<Value = Inst> {
        prop_oneof![
            (3u16..20, 3u16..20, 3u16..20).prop_map(|(t, a, b)| Inst::Add {
                rt: Reg::gpr(t),
                ra: Reg::gpr(a),
                rb: Reg::gpr(b)
            }),
            (3u16..20, 3u16..20, -64i64..64).prop_map(|(t, a, imm)| Inst::Addi {
                rt: Reg::gpr(t),
                ra: Reg::gpr(a),
                imm
            }),
            (3u16..20, 3u16..20).prop_map(|(t, a)| Inst::Mulld {
                rt: Reg::gpr(t),
                ra: Reg::gpr(a),
                rb: Reg::gpr(a)
            }),
            (3u16..20, 0i64..64).prop_map(|(t, d)| Inst::Ld {
                rt: Reg::gpr(t),
                ra: Reg::gpr(1),
                disp: d * 8
            }),
            (3u16..20, 0i64..64).prop_map(|(s, d)| Inst::Std {
                rs: Reg::gpr(s),
                ra: Reg::gpr(1),
                disp: d * 8
            }),
            (3u16..20, -32i64..32).prop_map(|(a, imm)| Inst::Cmpi {
                bf: Reg::cr(0),
                ra: Reg::gpr(a),
                imm
            }),
        ]
    }

    fn trace_of(body: &[Inst], iters: i64) -> p10sim::isa::Trace {
        let mut b = ProgramBuilder::new();
        b.li(Reg::gpr(1), 0x20_0000);
        b.li(Reg::gpr(2), iters);
        b.mtctr(Reg::gpr(2));
        let top = b.bind_label();
        for inst in body {
            if let Inst::Cmpi { .. } = inst {
                b.push(*inst);
                let skip = b.label();
                b.bc(Cond::Eq, Reg::cr(0), skip);
                b.addi(Reg::gpr(3), Reg::gpr(3), 1);
                b.bind(skip);
            } else {
                b.push(*inst);
            }
        }
        b.bdnz(top);
        let mut m = p10sim::isa::Machine::new();
        m.run(&b.build(), 200_000)
            .expect("generated programs are valid")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn schedulers_agree_on_random_programs(
            body in proptest::collection::vec(arb_body_op(), 1..16),
            iters in 1i64..30,
            smt in 1usize..3,
        ) {
            let trace = trace_of(&body, iters);
            for mut cfg in [CoreConfig::power9(), CoreConfig::power10()] {
                cfg.smt = if smt == 1 { SmtMode::St } else { SmtMode::Smt2 };
                let traces = vec![trace.clone(); smt];
                let polled = run_with(&cfg, Scheduler::Polled, &traces);
                let event = run_with(&cfg, Scheduler::EventDriven, &traces);
                prop_assert_eq!(
                    serde_json::to_string(&polled).expect("serialize"),
                    serde_json::to_string(&event).expect("serialize")
                );
            }
        }
    }
}
